"""Tests for the capability subsystem: XTEA, the one-way function, and
the sparse-capability mint/restrict/verify protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capability import (
    ALL_RIGHTS,
    CAP_WIRE_SIZE,
    CHECK_MASK,
    Capability,
    NULL_CAPABILITY,
    RIGHT_DELETE,
    RIGHT_MODIFY,
    RIGHT_READ,
    has_rights,
    mint_owner,
    one_way,
    port_for_name,
    require,
    restrict,
    rights_names,
    server_restrict,
    verify,
    xtea_decrypt_block,
    xtea_encrypt_block,
)
from repro.errors import BadRequestError, CapabilityError, RightsError


# ---------------------------------------------------------------- XTEA


def test_xtea_known_vector():
    """Published XTEA test vector (32 rounds)."""
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("4142434445464748")
    assert xtea_encrypt_block(key, plaintext).hex() == "497df3d072612cb5"


def test_xtea_zero_vector():
    key = bytes(16)
    ct = xtea_encrypt_block(key, bytes(8))
    assert xtea_decrypt_block(key, ct) == bytes(8)


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=8, max_size=8))
def test_xtea_roundtrip(key, block):
    assert xtea_decrypt_block(key, xtea_encrypt_block(key, block)) == block


def test_xtea_rejects_bad_sizes():
    with pytest.raises(ValueError):
        xtea_encrypt_block(bytes(15), bytes(8))
    with pytest.raises(ValueError):
        xtea_encrypt_block(bytes(16), bytes(7))
    with pytest.raises(ValueError):
        xtea_decrypt_block(bytes(16), bytes(9))


def test_xtea_avalanche():
    """Flipping one plaintext bit should change many ciphertext bits."""
    key = b"0123456789abcdef"
    a = xtea_encrypt_block(key, bytes(8))
    b = xtea_encrypt_block(key, bytes(7) + b"\x01")
    differing = bin(int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).count("1")
    assert differing > 16


# ------------------------------------------------------ one-way function


def test_one_way_deterministic():
    assert one_way(12345) == one_way(12345)


def test_one_way_range():
    for value in (0, 1, CHECK_MASK, 0x123456789ABC):
        assert 0 <= one_way(value) <= CHECK_MASK


def test_one_way_rejects_out_of_range():
    with pytest.raises(ValueError):
        one_way(-1)
    with pytest.raises(ValueError):
        one_way(CHECK_MASK + 1)


@given(st.integers(min_value=0, max_value=CHECK_MASK))
def test_one_way_stays_in_range(value):
    assert 0 <= one_way(value) <= CHECK_MASK


def test_one_way_no_trivial_collisions():
    seen = {one_way(v) for v in range(2000)}
    assert len(seen) == 2000


# ------------------------------------------------------------ Capability


def test_pack_unpack_roundtrip():
    cap = Capability(port=0x123456789ABC, object=42, rights=0x15, check=0xDEADBEEF42)
    assert Capability.unpack(cap.pack()) == cap


def test_pack_size():
    assert len(NULL_CAPABILITY.pack()) == CAP_WIRE_SIZE


def test_unpack_rejects_wrong_size():
    with pytest.raises(BadRequestError):
        Capability.unpack(bytes(15))


@given(
    port=st.integers(min_value=0, max_value=(1 << 48) - 1),
    obj=st.integers(min_value=0, max_value=(1 << 24) - 1),
    rights=st.integers(min_value=0, max_value=255),
    check=st.integers(min_value=0, max_value=CHECK_MASK),
)
def test_pack_unpack_roundtrip_property(port, obj, rights, check):
    cap = Capability(port=port, object=obj, rights=rights, check=check)
    assert Capability.unpack(cap.pack()) == cap


def test_field_range_validation():
    with pytest.raises(BadRequestError):
        Capability(port=1 << 48, object=0, rights=0, check=0)
    with pytest.raises(BadRequestError):
        Capability(port=0, object=1 << 24, rights=0, check=0)
    with pytest.raises(BadRequestError):
        Capability(port=0, object=0, rights=256, check=0)
    with pytest.raises(BadRequestError):
        Capability(port=0, object=0, rights=0, check=1 << 48)


def test_str_shows_rights():
    cap = Capability(port=1, object=2, rights=RIGHT_READ | RIGHT_DELETE, check=3)
    assert "read|delete" in str(cap)
    assert rights_names(ALL_RIGHTS) == "all"
    assert rights_names(0) == "none"


# ----------------------------------------------- mint / restrict / verify


PORT = port_for_name("bullet-test")
SECRET = 0x9F3A551D00C4


def test_owner_capability_verifies():
    cap = mint_owner(PORT, 7, SECRET)
    assert cap.rights == ALL_RIGHTS
    assert verify(cap, SECRET)


def test_owner_capability_wrong_secret_fails():
    cap = mint_owner(PORT, 7, SECRET)
    assert not verify(cap, SECRET ^ 1)


def test_restricted_capability_verifies():
    owner = mint_owner(PORT, 7, SECRET)
    reader = restrict(owner, RIGHT_READ)
    assert reader.rights == RIGHT_READ
    assert verify(reader, SECRET)


def test_restricted_capability_cannot_be_amplified():
    """Editing the rights byte of a restricted capability must break the
    check field."""
    owner = mint_owner(PORT, 7, SECRET)
    reader = restrict(owner, RIGHT_READ)
    forged = Capability(port=reader.port, object=reader.object,
                        rights=RIGHT_READ | RIGHT_DELETE, check=reader.check)
    assert not verify(forged, SECRET)


def test_forged_all_rights_fails():
    """Guessing the secret is the only way to an owner capability."""
    forged = Capability(port=PORT, object=7, rights=ALL_RIGHTS, check=0x1234)
    assert not verify(forged, SECRET)


def test_restrict_noop_when_rights_unchanged():
    owner = mint_owner(PORT, 7, SECRET)
    assert restrict(owner, ALL_RIGHTS) is owner


def test_restrict_restricted_locally_rejected():
    owner = mint_owner(PORT, 7, SECRET)
    reader = restrict(owner, RIGHT_READ | RIGHT_DELETE)
    with pytest.raises(RightsError):
        restrict(reader, RIGHT_READ)


def test_server_restrict_of_restricted_capability():
    owner = mint_owner(PORT, 7, SECRET)
    both = restrict(owner, RIGHT_READ | RIGHT_DELETE)
    assert verify(both, SECRET)
    new_rights, new_check = server_restrict(both.rights, SECRET, RIGHT_READ)
    reader = Capability(port=PORT, object=7, rights=new_rights, check=new_check)
    assert reader.rights == RIGHT_READ
    assert verify(reader, SECRET)


def test_server_restrict_to_all_returns_secret():
    new_rights, new_check = server_restrict(ALL_RIGHTS, SECRET, ALL_RIGHTS)
    assert new_rights == ALL_RIGHTS
    assert new_check == SECRET


def test_require_passes_with_rights():
    owner = mint_owner(PORT, 7, SECRET)
    require(owner, SECRET, RIGHT_READ | RIGHT_DELETE)  # must not raise


def test_require_distinguishes_forgery_from_missing_rights():
    owner = mint_owner(PORT, 7, SECRET)
    reader = restrict(owner, RIGHT_READ)
    with pytest.raises(RightsError):
        require(reader, SECRET, RIGHT_DELETE)
    tampered = Capability(port=PORT, object=7, rights=RIGHT_READ, check=0)
    with pytest.raises(CapabilityError):
        require(tampered, SECRET, RIGHT_READ)


@given(
    secret=st.integers(min_value=0, max_value=CHECK_MASK),
    mask=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=200)
def test_restrict_verify_property(secret, mask):
    """Every locally restricted owner capability verifies, and changing
    its rights field invalidates it."""
    owner = mint_owner(PORT, 1, secret)
    cap = restrict(owner, mask)
    assert verify(cap, secret)
    if cap.rights != ALL_RIGHTS:
        tampered_rights = (cap.rights + 1) & 0xFF
        tampered = Capability(port=cap.port, object=cap.object,
                              rights=tampered_rights, check=cap.check)
        # With different rights the same check must (overwhelmingly) fail.
        assert not verify(tampered, secret)


@given(
    secret=st.integers(min_value=0, max_value=CHECK_MASK),
    presented=st.integers(min_value=0, max_value=255),
    mask=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=200)
def test_server_restrict_property(secret, presented, mask):
    """server_restrict always yields a capability that verifies and whose
    rights are the intersection."""
    new_rights, new_check = server_restrict(presented, secret, mask)
    cap = Capability(port=PORT, object=1, rights=new_rights, check=new_check)
    assert new_rights == (presented & mask)
    assert verify(cap, secret)


def test_has_rights():
    assert has_rights(RIGHT_READ | RIGHT_DELETE, RIGHT_READ)
    assert not has_rights(RIGHT_READ, RIGHT_READ | RIGHT_MODIFY)
    assert has_rights(ALL_RIGHTS, RIGHT_MODIFY)


def test_port_for_name_deterministic_and_distinct():
    assert port_for_name("bullet") == port_for_name("bullet")
    assert port_for_name("bullet") != port_for_name("directory")
    assert 0 <= port_for_name("x") < (1 << 48)
