"""Tests for the immutable B-tree over Bullet files, including a
hypothesis model check against a plain dict and GC integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import ImmutableBTree, InternalNode, LeafNode, decode_node
from repro.capability import Capability
from repro.client import LocalBulletStub
from repro.errors import BadRequestError, ConsistencyError, NotFoundError
from repro.sim import run_process

from conftest import make_bullet, small_testbed


@pytest.fixture
def tree_world(env):
    # Path-copying creates many short-lived node files; give the test
    # volume a roomy inode table (GC reclaims them in production).
    bullet = make_bullet(env, testbed=small_testbed(inode_count=4096))
    tree = ImmutableBTree(LocalBulletStub(bullet), fanout=4)
    root = run_process(env, tree.empty())
    return tree, root, bullet


def put(env, tree, root, pairs):
    for key, value in pairs:
        root = run_process(env, tree.insert(root, key, value))
    return root


# ------------------------------------------------------------- encoding


def test_leaf_roundtrip():
    leaf = LeafNode(keys=[b"a", b"b"], values=[b"1", bytes(1000)])
    decoded = decode_node(leaf.encode())
    assert decoded.keys == leaf.keys
    assert decoded.values == leaf.values


def test_internal_roundtrip():
    caps = [Capability(port=i, object=i, rights=0xFF, check=i) for i in (1, 2, 3)]
    node = InternalNode(separators=[b"m", b"t"], children=caps)
    decoded = decode_node(node.encode())
    assert decoded.separators == node.separators
    assert decoded.children == caps


def test_decode_garbage_rejected():
    with pytest.raises(ConsistencyError):
        decode_node(b"nonsense!")
    with pytest.raises(ConsistencyError):
        decode_node(b"x")


# ------------------------------------------------------------ basic ops


def test_insert_get(env, tree_world):
    tree, root, _ = tree_world
    root = put(env, tree, root, [(b"k1", b"v1"), (b"k2", b"v2")])
    assert run_process(env, tree.get(root, b"k1")) == b"v1"
    assert run_process(env, tree.get(root, b"k2")) == b"v2"


def test_get_missing(env, tree_world):
    tree, root, _ = tree_world
    with pytest.raises(NotFoundError):
        run_process(env, tree.get(root, b"ghost"))
    assert run_process(env, tree.contains(root, b"ghost")) is False


def test_insert_replaces_value(env, tree_world):
    tree, root, _ = tree_world
    root = put(env, tree, root, [(b"k", b"old"), (b"k", b"new")])
    assert run_process(env, tree.get(root, b"k")) == b"new"
    assert len(run_process(env, tree.items(root))) == 1


def test_persistence_old_roots_are_snapshots(env, tree_world):
    tree, root0, _ = tree_world
    root1 = run_process(env, tree.insert(root0, b"a", b"1"))
    root2 = run_process(env, tree.insert(root1, b"a", b"2"))
    root3 = run_process(env, tree.delete(root2, b"a"))
    assert run_process(env, tree.items(root0)) == []
    assert run_process(env, tree.get(root1, b"a")) == b"1"
    assert run_process(env, tree.get(root2, b"a")) == b"2"
    with pytest.raises(NotFoundError):
        run_process(env, tree.get(root3, b"a"))


def test_splits_grow_height(env, tree_world):
    tree, root, _ = tree_world
    assert run_process(env, tree.height(root)) == 1
    root = put(env, tree, root,
               [(f"{i:04d}".encode(), b"v") for i in range(50)])
    assert run_process(env, tree.height(root)) >= 3
    for i in range(50):
        assert run_process(env, tree.get(root, f"{i:04d}".encode())) == b"v"


def test_items_sorted_and_ranged(env, tree_world):
    tree, root, _ = tree_world
    import random
    ids = list(range(40))
    random.Random(5).shuffle(ids)
    root = put(env, tree, root,
               [(f"{i:03d}".encode(), str(i).encode()) for i in ids])
    pairs = run_process(env, tree.items(root))
    assert [k for k, _ in pairs] == sorted(k for k, _ in pairs)
    assert len(pairs) == 40
    window = run_process(env, tree.items(root, lo=b"010", hi=b"020"))
    assert [k for k, _ in window] == [f"{i:03d}".encode() for i in range(10, 20)]


def test_delete_and_empty_collapse(env, tree_world):
    tree, root, _ = tree_world
    root = put(env, tree, root,
               [(f"{i:02d}".encode(), b"v") for i in range(20)])
    for i in range(20):
        root = run_process(env, tree.delete(root, f"{i:02d}".encode()))
    assert run_process(env, tree.items(root)) == []
    assert run_process(env, tree.height(root)) == 1


def test_delete_missing_key(env, tree_world):
    tree, root, _ = tree_world
    root = put(env, tree, root, [(b"a", b"1")])
    with pytest.raises(NotFoundError):
        run_process(env, tree.delete(root, b"zz"))


def test_rebuild_packs_tree(env, tree_world):
    tree, root, _ = tree_world
    root = put(env, tree, root,
               [(f"{i:03d}".encode(), b"v") for i in range(60)])
    for i in range(0, 60, 2):
        root = run_process(env, tree.delete(root, f"{i:03d}".encode()))
    sparse_nodes = run_process(env, tree.node_count(root))
    packed = run_process(env, tree.rebuild(root))
    packed_nodes = run_process(env, tree.node_count(packed))
    assert packed_nodes <= sparse_nodes
    assert run_process(env, tree.items(packed)) == run_process(
        env, tree.items(root))


def test_fanout_validation(env):
    bullet = make_bullet(env)
    with pytest.raises(BadRequestError):
        ImmutableBTree(LocalBulletStub(bullet), fanout=3)


def test_keys_must_be_bytes(env, tree_world):
    tree, root, _ = tree_world
    with pytest.raises(BadRequestError):
        run_process(env, tree.insert(root, "string key", b"v"))


# ---------------------------------------------------------- model check


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=60),
            st.binary(max_size=8),
        ),
        max_size=50,
    )
)
@settings(max_examples=40, deadline=None)
def test_btree_matches_dict_model(script):
    from repro.sim import Environment

    env = Environment()
    bullet = make_bullet(env)
    tree = ImmutableBTree(LocalBulletStub(bullet), fanout=4)
    root = run_process(env, tree.empty())
    model: dict = {}
    for op, keynum, value in script:
        key = f"{keynum:03d}".encode()
        if op == "insert":
            root = run_process(env, tree.insert(root, key, value))
            model[key] = value
        elif key in model:
            root = run_process(env, tree.delete(root, key))
            del model[key]
    assert run_process(env, tree.items(root)) == sorted(model.items())
    for key, value in model.items():
        assert run_process(env, tree.get(root, key)) == value


# ------------------------------------------------------- GC integration


def test_gc_reclaims_superseded_nodes_keeps_live_tree(env):
    """Bind the current root in the directory; superseded interior
    nodes (unreachable) age out, the live tree survives via the
    collect_caps collector."""
    from repro.client import LocalBulletStub
    from repro.directory import DirectoryServer
    from repro.disk import VirtualDisk
    from repro.gc import gc_sweep
    from conftest import SMALL_DISK

    testbed = small_testbed(max_lives=2)
    bullet = make_bullet(env, testbed=testbed)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), testbed,
                           max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    names = run_process(env, dirs.create_directory())

    tree = ImmutableBTree(LocalBulletStub(bullet), fanout=4)
    root = run_process(env, tree.empty())
    for i in range(30):
        root = run_process(env, tree.insert(root, f"{i:02d}".encode(), b"v"))
    run_process(env, dirs.append(names, "db", root))

    live_nodes = run_process(env, tree.node_count(root))
    files_before = bullet.table.live_count
    assert files_before > live_nodes  # superseded versions still around

    current_root = root
    for _ in range(testbed.bullet.max_lives + 1):
        run_process(env, gc_sweep(
            bullet, [dirs],
            extra_collectors=[lambda: tree.collect_caps(current_root)],
        ))
    # Exactly the live tree (+ directory version files) remains.
    assert bullet.table.live_count < files_before
    pairs = run_process(env, tree.items(current_root))
    assert len(pairs) == 30
