"""The dogfood gate: ``src/repro`` must be clean under its own linter.

This is the satellite that makes the enforced invariants permanent —
any future commit that reads the wall clock, forgets a rights check, or
forks an unawaited process fails tier-1 here.

Also covers the CLI surface: exit codes, file:line reporting, JSON
output, and the rule catalogue.
"""

import json
from pathlib import Path

from repro.analysis import analyze_paths, rule_ids
from repro.analysis.cli import main

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def test_src_repro_is_clean():
    result = analyze_paths([str(SRC)])
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, f"src/repro has analyzer findings:\n{rendered}"
    # Sanity: this actually analyzed the tree with every rule.
    assert result.files_checked >= 60
    assert result.rules_run == sorted(rule_ids())


def test_src_repro_is_clean_under_strict_pragmas():
    # Every `# repro: allow(...)` in the tree must still suppress a
    # live finding — stale pragmas are reported as P001 and fail here.
    result = analyze_paths([str(SRC)], strict_pragmas=True)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, f"stale or violated pragmas:\n{rendered}"


def test_cli_concurrency_strict_dogfood(capsys):
    # The CI concurrency-analysis job's exact invocation.
    assert main(["--concurrency", "--strict-pragmas", str(SRC)]) == 0


def test_cli_concurrency_selects_lock_rules(capsys):
    bad = FIXTURES / "l002_bad.py"
    # D-rule noise would be off-select; the lock rules still fire.
    assert main(["--concurrency", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "L002" in out


def test_cli_clean_tree_exits_zero(capsys):
    assert main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_findings_exit_one_with_location(capsys):
    bad = FIXTURES / "d001_bad.py"
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "d001_bad.py:8:" in out
    assert "D001" in out


def test_cli_json_format(capsys):
    bad = FIXTURES / "a001_bad.py"
    assert main(["--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert [f["line"] for f in payload["findings"]] == [5, 7]
    assert all(f["rule"] == "A001" for f in payload["findings"])


def test_cli_parse_error_exits_two(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    assert main([str(broken)]) == 2
    out = capsys.readouterr().out
    assert "broken.py:1:" in out
    assert "E999" in out


def test_cli_no_paths_exits_two(capsys):
    assert main([]) == 2


def test_cli_unknown_path_exits_two(capsys):
    assert main(["no/such/dir"]) == 2


def test_cli_select(capsys):
    bad = FIXTURES / "d002_bad.py"
    assert main(["--select", "A001", str(bad)]) == 0
    assert main(["--select", "Z999", str(bad)]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in rule_ids():
        assert rule in out


def test_pragma_documented_syntax_matches_implementation():
    # The syntax advertised in the package docstring must be the one the
    # implementation accepts.
    import repro.analysis as analysis

    assert "# repro: allow(" in (analysis.__doc__ or "")
