"""Integration tests for the directory and log servers' RPC planes, and
a full three-server composition over one simulated network."""

import pytest

from repro.capability import Capability
from repro.client import BulletClient, LocalBulletStub
from repro.directory import DIR_OPCODES, DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import ExistsError, NotFoundError, error_for_status, Status
from repro.logsvc import LOG_OPCODES, LogServer
from repro.net import Ethernet, RpcRequest, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


@pytest.fixture
def network(env):
    eth = Ethernet(env, EthernetProfile())
    return RpcTransport(env, eth, CpuProfile())


def dir_call(env, rpc, port, opcode, cap=None, args=(), body=b""):
    reply = run_process(env, rpc.trans(
        port, RpcRequest(opcode=DIR_OPCODES[opcode], cap=cap, args=args,
                         body=body)))
    if not reply.ok:
        raise error_for_status(reply.status, reply.message)
    return reply


def test_directory_rpc_plane(env, network):
    bullet = make_bullet(env, transport=network)
    dir_disk = VirtualDisk(env, SMALL_DISK, name="dirdisk")
    dirs = DirectoryServer(env, dir_disk, LocalBulletStub(bullet),
                           small_testbed(), transport=network,
                           max_directories=16)
    dirs.format()
    run_process(env, dirs.boot())
    bullet_client = BulletClient(env, network, bullet.port)

    root = dir_call(env, network, dirs.port, "CREATE_DIR").caps[0]
    file_cap = run_process(env, bullet_client.create(b"via rpc", 1))
    dir_call(env, network, dirs.port, "APPEND", cap=root, args=("f",),
             body=file_cap.pack())
    found = dir_call(env, network, dirs.port, "LOOKUP", cap=root,
                     args=("f",)).caps[0]
    assert found == file_cap
    names = dir_call(env, network, dirs.port, "LIST", cap=root).args
    assert list(names) == ["f"]
    # Duplicate append surfaces as ExistsError across the wire.
    with pytest.raises(ExistsError):
        dir_call(env, network, dirs.port, "APPEND", cap=root, args=("f",),
                 body=file_cap.pack())
    # REPLACE and REMOVE round-trip capabilities.
    v2 = run_process(env, bullet_client.create(b"version 2", 1))
    old = dir_call(env, network, dirs.port, "REPLACE", cap=root,
                   args=("f",), body=v2.pack()).caps[0]
    assert old == file_cap
    removed = dir_call(env, network, dirs.port, "REMOVE", cap=root,
                       args=("f",)).caps[0]
    assert removed == v2
    with pytest.raises(NotFoundError):
        dir_call(env, network, dirs.port, "LOOKUP", cap=root, args=("f",))


def test_directory_rpc_path_and_history(env, network):
    bullet = make_bullet(env, transport=network)
    dir_disk = VirtualDisk(env, SMALL_DISK, name="dirdisk")
    dirs = DirectoryServer(env, dir_disk, LocalBulletStub(bullet),
                           small_testbed(), transport=network,
                           max_directories=16)
    dirs.format()
    run_process(env, dirs.boot())
    bullet_client = BulletClient(env, network, bullet.port)

    root = dir_call(env, network, dirs.port, "CREATE_DIR").caps[0]
    sub = dir_call(env, network, dirs.port, "CREATE_DIR").caps[0]
    leaf = run_process(env, bullet_client.create(b"leaf", 1))
    dir_call(env, network, dirs.port, "APPEND", cap=root, args=("sub",),
             body=sub.pack())
    dir_call(env, network, dirs.port, "APPEND", cap=sub, args=("leaf",),
             body=leaf.pack())
    found = dir_call(env, network, dirs.port, "LOOKUP_PATH", cap=root,
                     args=("sub/leaf",)).caps[0]
    assert found == leaf
    history = dir_call(env, network, dirs.port, "HISTORY", cap=sub).caps
    assert len(history) == 2  # empty version + one append


def test_log_rpc_plane(env, network):
    disk = VirtualDisk(env, SMALL_DISK, name="logdisk")
    logs = LogServer(env, disk, small_testbed(), transport=network)
    logs.format()
    run_process(env, logs.boot())

    def call(opcode, cap=None, args=(), body=b""):
        reply = run_process(env, network.trans(
            logs.port, RpcRequest(opcode=LOG_OPCODES[opcode], cap=cap,
                                  args=args, body=body)))
        if not reply.ok:
            raise error_for_status(reply.status, reply.message)
        return reply

    cap = call("CREATE").caps[0]
    assert call("APPEND", cap=cap, body=b"first").args[0] == 0
    assert call("APPEND", cap=cap, body=b"second").args[0] == 1
    assert call("LENGTH", cap=cap).args[0] == 2
    reply = call("READ", cap=cap, args=(0, 10))
    assert reply.args[0] == 2
    # Decode the packed record stream.
    body, records = reply.body, []
    offset = 0
    while offset < len(body):
        n = int.from_bytes(body[offset:offset + 2], "big")
        offset += 2
        records.append(body[offset:offset + n])
        offset += n
    assert records == [b"first", b"second"]


def test_three_servers_share_one_network(env, network):
    """Bullet + directory + log servers all serving on one Ethernet,
    with interleaved clients — the Amoeba 'specialized servers' layout."""
    bullet = make_bullet(env, transport=network)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           transport=network, max_directories=8)
    dirs.format()
    run_process(env, dirs.boot())
    logs = LogServer(env, VirtualDisk(env, SMALL_DISK, name="ld"),
                     small_testbed(), transport=network)
    logs.format()
    run_process(env, logs.boot())
    bullet_client = BulletClient(env, network, bullet.port)

    results = {}

    def bullet_user():
        cap = yield from bullet_client.create(bytes(16 * KB), 2)
        results["bullet"] = len((yield from bullet_client.read(cap)))

    def dir_user():
        reply = yield env.process(network.trans(
            dirs.port, RpcRequest(opcode=DIR_OPCODES["CREATE_DIR"])))
        results["dir"] = reply.ok

    def log_user():
        reply = yield env.process(network.trans(
            logs.port, RpcRequest(opcode=LOG_OPCODES["CREATE"])))
        cap = reply.caps[0]
        reply = yield env.process(network.trans(
            logs.port, RpcRequest(opcode=LOG_OPCODES["APPEND"], cap=cap,
                                  body=b"interleaved")))
        results["log"] = reply.args[0]

    env.process(bullet_user())
    env.process(dir_user())
    env.process(log_user())
    env.run()
    assert results == {"bullet": 16 * KB, "dir": True, "log": 0}
