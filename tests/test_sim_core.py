"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    CountOf,
    Environment,
    Event,
    Interrupt,
    Timeout,
    run_process,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        return env.now

    assert run_process(env, proc()) == 1.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeouts_fire_in_order():
    env = Environment()
    fired = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        fired.append(tag)

    env.process(waiter(3.0, "c"))
    env.process(waiter(1.0, "a"))
    env.process(waiter(2.0, "b"))
    env.run()
    assert fired == ["a", "b", "c"]


def test_same_time_ties_broken_by_insertion_order():
    env = Environment()
    fired = []

    def waiter(tag):
        yield env.timeout(1.0)
        fired.append(tag)

    for tag in ("first", "second", "third"):
        env.process(waiter(tag))
    env.run()
    assert fired == ["first", "second", "third"]


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    assert run_process(env, parent()) == 43


def test_nested_processes_accumulate_time():
    env = Environment()

    def child():
        yield env.timeout(2.0)

    def parent():
        yield env.process(child())
        yield env.process(child())
        return env.now

    assert run_process(env, parent()) == 4.0


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()

    def triggerer():
        yield env.timeout(1.0)
        ev.succeed("payload")

    def waiter():
        value = yield ev
        return (env.now, value)

    env.process(triggerer())
    assert run_process(env, waiter()) == (1.0, "payload")


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def triggerer():
        yield env.timeout(1.0)
        ev.fail(ValueError("boom"))

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return str(exc)
        return "no exception"

    env.process(triggerer())
    assert run_process(env, waiter()) == "boom"


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_surfaces_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    env.process(ticker())
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=2.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_run_until_event_reraises_failure():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise KeyError("inside process")

    p = env.process(proc())
    with pytest.raises(KeyError):
        env.run(until=p)


def test_run_until_never_firing_event_reports_deadlock():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(until=ev)


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run(until=0.0)  # process the event

    def proc():
        value = yield ev
        return (env.now, value)

    assert run_process(env, proc()) == (0.0, "early")


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def proc():
        yield 123

    p = env.process(proc())
    with pytest.raises(TypeError, match="non-event"):
        env.run(until=p)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_interrupt_thrown_into_waiting_process():
    env = Environment()

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt as intr:
            return ("interrupted", env.now, intr.cause)
        return "completed"

    def attacker(target):
        yield env.timeout(2.0)
        target.interrupt(cause="disk failed")

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(until=v) == ("interrupted", 2.0, "disk failed")


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_process_survives_interrupt_and_continues():
    env = Environment()

    def victim():
        total = 0
        try:
            yield env.timeout(10.0)
            total += 10
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    def attacker(target):
        yield env.timeout(2.0)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(until=v) == 3.0


def test_all_of_waits_for_slowest():
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
        values = yield AllOf(env, events)
        return (env.now, sorted(values))

    assert run_process(env, proc()) == (3.0, [1.0, 2.0, 3.0])


def test_any_of_fires_on_fastest():
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in (5.0, 1.0, 3.0)]
        values = yield AnyOf(env, events)
        return (env.now, values)

    now, values = run_process(env, proc())
    assert now == 1.0
    assert 1.0 in values


def test_count_of_fires_at_kth_success():
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in (1.0, 2.0, 3.0)]
        values = yield CountOf(env, events, need=2)
        return (env.now, sorted(values))

    assert run_process(env, proc()) == (2.0, [1.0, 2.0])


def test_count_of_zero_fires_immediately():
    env = Environment()

    def proc():
        events = [env.timeout(5.0)]
        yield CountOf(env, events, need=0)
        return env.now

    assert run_process(env, proc()) == 0.0


def test_count_of_fails_when_success_impossible():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise ValueError("replica died")

    def proc():
        events = [env.process(failer()), env.process(failer())]
        try:
            yield CountOf(env, events, need=2)
        except ValueError as exc:
            return ("failed", str(exc))
        return "succeeded"

    result = run_process(env, proc())
    assert result == ("failed", "replica died")


def test_count_of_need_exceeding_events_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        CountOf(env, [env.timeout(1.0)], need=2)


def test_count_of_tolerates_failures_below_threshold():
    """With need=1 of {fast failure, slow success}, the condition should
    still succeed when the success arrives."""
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise ValueError("one replica died")

    def proc():
        events = [env.process(failer()), env.timeout(2.0, value="ok")]
        values = yield CountOf(env, events, need=1)
        return (env.now, values)

    assert run_process(env, proc()) == (2.0, ["ok"])


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_peek_empty_heap_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_without_events_rejected():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.step()


def test_active_process_visible_during_resume():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)
        seen.append(env.active_process)

    p = env.process(proc())
    env.run()
    assert seen == [p, p]
    assert env.active_process is None


def test_self_interrupt_rejected():
    env = Environment()

    def proc():
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(0.1)

    run_process(env, proc())


def test_long_chain_of_immediate_events():
    """Thousands of zero-delay resumptions must work without recursion
    problems and without advancing the clock."""
    env = Environment()

    def proc():
        total = 0
        for _ in range(5000):
            ev = env.event()
            ev.succeed(1)
            total += yield ev
        return (env.now, total)

    assert run_process(env, proc()) == (0.0, 5000)


def test_many_processes_complete():
    env = Environment()
    done = []

    def worker(i):
        yield env.timeout(i * 0.001)
        done.append(i)

    for i in range(1000):
        env.process(worker(i))
    env.run()
    assert len(done) == 1000
    assert done == sorted(done)
