"""Units for the per-file lock plane (repro.core.locks): exclusion,
FIFO fairness, writer non-starvation, cancel-while-queued, release via
``finally`` when the holder is crashed mid-hold, and the registry
instrumentation."""

import pytest

from repro.core import FileLockTable
from repro.errors import ConsistencyError
from repro.obs import MetricsRegistry
from repro.sim import Environment, Interrupt, run_process


@pytest.fixture
def table(env):
    return FileLockTable(env)


def hold(env, table, log, name, key, mode, work):
    """Process: acquire, note the hold window, release.

    The ``yield grant`` sits inside the ``try`` — the canonical pattern
    (mirrored by the server ops): an Interrupt delivered while still
    *queued* must also reach ``release``, which cancels the pending
    grant instead of leaving a ghost waiter at the head of the queue.
    """
    grant = (table.acquire_read(key) if mode == "read"
             else table.acquire_write(key))
    try:
        yield grant
        log.append(("acquired", name, env.now))
        yield env.timeout(work)
    finally:
        table.release(grant)
        log.append(("released", name, env.now))


def test_uncontended_grants_cost_zero_time(env, table):
    def one():
        started = env.now
        grant = table.acquire_write(7)
        yield grant
        assert env.now == started
        table.release(grant)
        grant = table.acquire_read(7)
        yield grant
        assert env.now == started
        table.release(grant)

    run_process(env, one())
    # Idle keys are reclaimed: the table does not grow with every file
    # ever touched.
    assert table.held_keys() == []
    assert table.waiters(7) == 0


def test_readers_share_writers_exclude(env, table):
    log = []
    env.process(hold(env, table, log, "r1", 1, "read", 1.0))
    env.process(hold(env, table, log, "r2", 1, "read", 1.0))
    env.process(hold(env, table, log, "w", 1, "write", 1.0))
    env.run()
    # Both readers overlapped; the writer waited for both.
    assert [e for e in log if e[0] == "acquired"][:2] == [
        ("acquired", "r1", 0.0), ("acquired", "r2", 0.0)]
    w_start = next(t for kind, name, t in log
                   if kind == "acquired" and name == "w")
    assert w_start == 1.0


def test_fifo_fairness_reader_behind_writer_waits(env, table):
    """A reader arriving after a queued writer queues behind it — no
    writer starvation under a stream of readers."""
    log = []

    def scenario():
        yield env.process(noted(0.0, "r1", "read", 2.0))

    def noted(delay, name, mode, work):
        yield env.timeout(delay)
        yield from hold(env, table, log, name, 5, mode, work)

    env.process(noted(0.0, "r1", "read", 2.0))
    env.process(noted(0.5, "w", "write", 1.0))
    env.process(noted(1.0, "r2", "read", 1.0))
    env.run()
    order = [(name, t) for kind, name, t in log if kind == "acquired"]
    # r2 arrived while r1 held the lock and COULD have shared it, but
    # the queued writer goes first (FIFO), then r2.
    assert order == [("r1", 0.0), ("w", 2.0), ("r2", 3.0)]


def test_queued_readers_admitted_as_a_batch(env, table):
    log = []

    def noted(delay, name, mode, work):
        yield env.timeout(delay)
        yield from hold(env, table, log, name, 5, mode, work)

    env.process(noted(0.0, "w", "write", 2.0))
    env.process(noted(0.5, "r1", "read", 1.0))
    env.process(noted(0.6, "r2", "read", 1.0))
    env.run()
    starts = [(name, t) for kind, name, t in log if kind == "acquired"]
    # Both readers start together the moment the writer releases.
    assert starts == [("w", 0.0), ("r1", 2.0), ("r2", 2.0)]


def test_interrupt_during_hold_releases_via_finally(env, table):
    log = []
    holder = env.process(hold(env, table, log, "h", 3, "write", 100.0))

    def crasher():
        yield env.timeout(1.0)
        holder.interrupt("crash")

    env.process(crasher())
    waiter = env.process(hold(env, table, log, "next", 3, "write", 1.0))
    with pytest.raises(Interrupt):
        env.run(until=holder)
    env.run(until=waiter)
    # The interrupted holder released at t=1; the waiter got in then.
    assert ("released", "h", 1.0) in log
    assert ("acquired", "next", 1.0) in log
    assert table.held_keys() == []


def test_interrupt_while_queued_cancels_the_waiter(env, table):
    log = []
    env.process(hold(env, table, log, "holder", 9, "write", 5.0))
    queued = env.process(hold(env, table, log, "queued", 9, "write", 1.0))
    follower = env.process(hold(env, table, log, "after", 9, "read", 1.0))

    def cancel():
        yield env.timeout(1.0)
        queued.interrupt("client gave up")

    env.process(cancel())
    with pytest.raises(Interrupt):
        env.run(until=queued)
    env.run(until=follower)
    # The cancelled waiter never acquired; the one behind it did.
    assert not any(name == "queued" and kind == "acquired"
                   for kind, name, _ in log)
    assert ("acquired", "after", 5.0) in log
    assert table.held_keys() == []


def test_release_is_idempotent_and_strict(env, table):
    def scenario():
        grant = table.acquire_write(1)
        yield grant
        table.release(grant)
        table.release(grant)  # second release of the same grant: no-op

    run_process(env, scenario())
    # Releasing a grant the table never issued for a held key is a bug.
    def bogus():
        grant = table.acquire_write(2)
        yield grant
        other = FileLockTable(env)
        foreign = other.acquire_write(2)
        yield foreign
        with pytest.raises(ConsistencyError):
            table.release(foreign)
        table.release(grant)
        other.release(foreign)

    run_process(env, bogus())


def test_batch_readers_admitted_after_queued_writer_crashes(env):
    """Readers queued behind a writer that crashes *while queued* are
    admitted as one batch when the holder releases — the dead writer
    must not leave a ghost at the head of the FIFO — and the metrics
    stay consistent: the writer's acquisition is never counted."""
    registry = MetricsRegistry()
    table = FileLockTable(env, metrics=registry, owner="bullet")
    log = []

    def noted(delay, name, mode, work):
        yield env.timeout(delay)
        yield from hold(env, table, log, name, 5, mode, work)

    env.process(noted(0.0, "holder", "read", 5.0))
    writer = env.process(noted(0.5, "w", "write", 1.0))
    r1 = env.process(noted(1.0, "r1", "read", 1.0))
    r2 = env.process(noted(1.5, "r2", "read", 1.0))

    def crash_queued_writer():
        yield env.timeout(2.0)
        writer.interrupt("client crash")

    env.process(crash_queued_writer())
    with pytest.raises(Interrupt):
        env.run(until=writer)
    env.run(until=r1)
    env.run(until=r2)
    env.run()
    starts = [(name, t) for kind, name, t in log if kind == "acquired"]
    # The instant the queued writer is cancelled (t=2.0) the read batch
    # can share with the still-reading holder: both readers start
    # together, well before the holder releases at t=5.
    assert starts == [("holder", 0.0), ("r1", 2.0), ("r2", 2.0)]
    # 3 admitted read grants, 0 writes; 3 contended arrivals (w, r1, r2).
    assert registry.value("repro_lock_acquisitions_total",
                          server="bullet", mode="read") == 3
    assert registry.value("repro_lock_acquisitions_total",
                          server="bullet", mode="write") == 0
    assert registry.value("repro_lock_contention_total", server="bullet") == 3
    # The cancelled writer never reached admission, so only the three
    # admitted grants observed a wait (0 + 1.0 + 0.5 seconds of queueing).
    waits = registry.find("repro_lock_wait_seconds", server="bullet")
    assert waits.count == 3 and waits.total == pytest.approx(1.5)
    assert registry.value("repro_lock_held", server="bullet") == 0
    assert table.held_keys() == [] and table.waiters(5) == 0


def test_lock_metrics_account_waits_and_contention(env):
    registry = MetricsRegistry()
    table = FileLockTable(env, metrics=registry, owner="bullet")
    log = []
    env.process(hold(env, table, log, "w", 1, "write", 2.0))
    env.process(hold(env, table, log, "r", 1, "read", 1.0))
    env.run()
    assert registry.value("repro_lock_acquisitions_total",
                          server="bullet", mode="write") == 1
    assert registry.value("repro_lock_acquisitions_total",
                          server="bullet", mode="read") == 1
    assert registry.value("repro_lock_contention_total", server="bullet") == 1
    waits = registry.find("repro_lock_wait_seconds", server="bullet")
    assert waits.count == 2 and waits.total == pytest.approx(2.0)
    assert registry.value("repro_lock_held", server="bullet") == 0
