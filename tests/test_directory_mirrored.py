"""The directory server on mirrored disks: same availability story as
the Bullet server for the naming layer."""

import pytest

from repro.client import LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import MirroredDiskSet, VirtualDisk
from repro.sim import run_process

from conftest import SMALL_DISK, make_bullet, small_testbed


@pytest.fixture
def mirrored_dirs(env):
    bullet = make_bullet(env)
    disks = [VirtualDisk(env, SMALL_DISK, name=f"dir-d{i}") for i in (0, 1)]
    mirror = MirroredDiskSet(env, disks)
    dirs = DirectoryServer(env, mirror, LocalBulletStub(bullet),
                           small_testbed(), max_directories=16)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    return dirs, bullet, disks


def test_slot_records_on_both_disks(env, mirrored_dirs):
    dirs, bullet, disks = mirrored_dirs
    root = run_process(env, dirs.create_directory())
    cap = run_process(env, bullet.create(b"x", 1))
    run_process(env, dirs.append(root, "f", cap))
    slot_block = 1 + (root.object - 1)
    a = disks[0].read_raw(slot_block, 1)
    b = disks[1].read_raw(slot_block, 1)
    assert a == b
    assert a[:4] != bytes(4)  # record present


def test_directory_survives_primary_disk_failure(env, mirrored_dirs):
    dirs, bullet, disks = mirrored_dirs
    root = run_process(env, dirs.create_directory())
    cap = run_process(env, bullet.create(b"durable", 1))
    run_process(env, dirs.append(root, "f", cap))
    disks[0].fail("dir primary dead")
    # Mutations and lookups keep working on the surviving replica.
    cap2 = run_process(env, bullet.create(b"more", 1))
    run_process(env, dirs.append(root, "g", cap2))
    assert run_process(env, dirs.lookup(root, "f")) == cap
    # Reboot purely from the survivor.
    dirs.crash()
    reborn = DirectoryServer(env, dirs.disk, LocalBulletStub(bullet),
                             small_testbed(), name="directory",
                             max_directories=16)
    env.run(until=env.process(reborn.boot()))
    assert run_process(env, reborn.list_names(root)) == ["f", "g"]


def test_single_disk_still_supported(env):
    """The plain-VirtualDisk form keeps working unchanged."""
    bullet = make_bullet(env)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    root = run_process(env, dirs.create_directory())
    assert run_process(env, dirs.list_names(root)) == []
