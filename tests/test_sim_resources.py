"""Unit tests for Resource, PriorityResource, and Store."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store, run_process


def test_resource_grants_immediately_under_capacity():
    env = Environment()
    res = Resource(env, capacity=2)

    def proc():
        r1 = res.request()
        yield r1
        r2 = res.request()
        yield r2
        return env.now

    assert run_process(env, proc()) == 0.0


def test_resource_capacity_validated():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_queues_when_full():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        order.append(("holder-acquired", env.now))
        yield env.timeout(5.0)
        res.release(req)

    def waiter():
        yield env.timeout(1.0)  # arrive while held
        req = res.request()
        yield req
        order.append(("waiter-acquired", env.now))
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert order == [("holder-acquired", 0.0), ("waiter-acquired", 5.0)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    acquired = []

    def client(i, arrival):
        yield env.timeout(arrival)
        req = res.request()
        yield req
        acquired.append(i)
        yield env.timeout(1.0)
        res.release(req)

    for i in range(5):
        env.process(client(i, arrival=i * 0.1))
    env.run()
    assert acquired == [0, 1, 2, 3, 4]


def test_release_unheld_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req1 = res.request()
        yield req1
        req2 = res.request()  # queued, not granted
        with pytest.raises(RuntimeError):
            res.release(req2)
        res.cancel(req2)
        res.release(req1)

    run_process(env, proc())
    assert res.count == 0


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req1 = res.request()
        yield req1
        req2 = res.request()
        res.cancel(req2)
        with pytest.raises(RuntimeError):
            res.cancel(req2)  # already cancelled
        res.release(req1)
        # The cancelled request must not have been granted.
        assert res.count == 0

    run_process(env, proc())


def test_queue_length_tracks_waiters():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def waiter():
        yield env.timeout(1.0)
        req = res.request()
        yield req
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.run(until=2.0)
    assert res.queue_length == 1
    env.run()
    assert res.queue_length == 0


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    acquired = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def client(tag, priority):
        yield env.timeout(1.0)
        req = res.request(priority=priority)
        yield req
        acquired.append(tag)
        res.release(req)

    env.process(holder())
    env.process(client("low-urgency", 10))
    env.process(client("high-urgency", 1))
    env.process(client("mid-urgency", 5))
    env.run()
    assert acquired == ["high-urgency", "mid-urgency", "low-urgency"]


def test_priority_resource_ties_are_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    acquired = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def client(tag):
        yield env.timeout(1.0)
        req = res.request(priority=3)
        yield req
        acquired.append(tag)
        res.release(req)

    env.process(holder())
    for tag in ("a", "b", "c"):
        env.process(client(tag))
    env.run()
    assert acquired == ["a", "b", "c"]


def test_priority_resource_cancel():
    env = Environment()
    res = PriorityResource(env, capacity=1)

    def proc():
        req1 = res.request()
        yield req1
        req2 = res.request(priority=1)
        req3 = res.request(priority=2)
        res.cancel(req2)
        res.release(req1)
        yield req3  # req3 must be granted since req2 was cancelled
        res.release(req3)
        return "ok"

    assert run_process(env, proc()) == "ok"


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")

    def proc():
        first = yield store.get()
        second = yield store.get()
        return (first, second)

    assert run_process(env, proc()) == ("a", "b")


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def producer():
        yield env.timeout(2.0)
        store.put("item")

    def consumer():
        item = yield store.get()
        return (env.now, item)

    env.process(producer())
    assert run_process(env, consumer()) == (2.0, "item")


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(tag):
        item = yield store.get()
        received.append((tag, item))

    def producer():
        yield env.timeout(1.0)
        store.put("x")
        store.put("y")

    env.process(consumer("first"))
    env.process(consumer("second"))
    env.process(producer())
    env.run()
    assert received == [("first", "x"), ("second", "y")]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put(7)
    assert len(store) == 1
    assert store.try_get() == 7
    assert store.try_get() is None
