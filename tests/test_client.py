"""Tests for the client stubs: the RPC plane end-to-end, the local
stub equivalence, and the client-side cache."""

import pytest

from repro.capability import RIGHT_READ, restrict
from repro.client import BulletClient, CachingBulletClient, LocalBulletStub
from repro.errors import (
    BadRequestError,
    NotFoundError,
    RightsError,
    ServerDownError,
)
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, run_process
from repro.units import KB

from conftest import make_bullet


@pytest.fixture
def rpc_rig(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    client = BulletClient(env, rpc, bullet.port)
    return bullet, client


def test_rpc_create_read_roundtrip(env, rpc_rig):
    bullet, client = rpc_rig
    payload = bytes(range(256)) * 16
    cap = run_process(env, client.create(payload, 2))
    assert run_process(env, client.read(cap)) == payload
    assert run_process(env, client.size(cap)) == len(payload)
    assert env.now > 0


def test_rpc_delete_then_read_fails(env, rpc_rig):
    _bullet, client = rpc_rig
    cap = run_process(env, client.create(b"x", 1))
    run_process(env, client.delete(cap))
    with pytest.raises(NotFoundError):
        run_process(env, client.read(cap))


def test_rpc_modify(env, rpc_rig):
    _bullet, client = rpc_rig
    v1 = run_process(env, client.create(b"hello world", 1))
    v2 = run_process(env, client.modify(v1, 6, 5, b"bullet", 1))
    assert run_process(env, client.read(v2)) == b"hello bullet"
    assert run_process(env, client.read(v1)) == b"hello world"


def test_rpc_restrict(env, rpc_rig):
    _bullet, client = rpc_rig
    owner = run_process(env, client.create(b"data", 1))
    reader = run_process(env, client.restrict(owner, RIGHT_READ))
    assert reader.rights == RIGHT_READ
    assert run_process(env, client.read(reader)) == b"data"
    with pytest.raises(RightsError):
        run_process(env, client.delete(reader))


def test_rpc_stat(env, rpc_rig):
    _bullet, client = rpc_rig
    cap = run_process(env, client.create(b"x", 1))
    status = run_process(env, client.stat(cap))
    assert status["files"] == 1
    assert status["creates"] == 1


def test_rpc_errors_marshal_across_wire(env, rpc_rig):
    _bullet, client = rpc_rig
    cap = run_process(env, client.create(b"x", 1))
    with pytest.raises(BadRequestError):
        run_process(env, client.create(b"y", 99))  # bad p-factor
    # The server survives and keeps serving.
    assert run_process(env, client.read(cap)) == b"x"


def test_server_crash_fails_clients(env, rpc_rig):
    bullet, client = rpc_rig
    cap = run_process(env, client.create(b"x", 1))
    bullet.crash()

    def attempt():
        try:
            yield from client.read(cap)
        except ServerDownError:
            return "down"

    # A fresh client call hits the crashed endpoint. The endpoint is
    # marked down, so trans times out in the locate phase.
    client.timeout = 0.5
    assert run_process(env, attempt()) == "down"


def test_local_stub_equivalent_results(env):
    """The local stub and the RPC plane must return identical data (the
    timing differs, the functionality must not)."""
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    remote = BulletClient(env, rpc, bullet.port)
    local = LocalBulletStub(bullet)

    cap_r = run_process(env, remote.create(b"same bytes", 1))
    cap_l = run_process(env, local.create(b"same bytes", 1))
    assert run_process(env, remote.read(cap_l)) == b"same bytes"
    assert run_process(env, local.read(cap_r)) == b"same bytes"
    assert run_process(env, local.size(cap_r)) == run_process(
        env, remote.size(cap_l))


# ----------------------------------------------------------- client cache


def test_caching_client_hit_avoids_rpc(env, rpc_rig):
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"cache me", 1))
    assert run_process(env, caching.read(cap)) == b"cache me"
    reads_at_server = bullet.stats.reads
    t0 = env.now
    assert run_process(env, caching.read(cap)) == b"cache me"
    assert bullet.stats.reads == reads_at_server  # no server involvement
    assert env.now == t0                          # and zero simulated time
    assert caching.hits == 1 and caching.misses == 1


def test_caching_client_size_from_cache(env, rpc_rig):
    _bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"12345", 1))
    run_process(env, caching.read(cap))
    assert run_process(env, caching.size(cap)) == 5


def test_caching_client_lru_capacity(env, rpc_rig):
    _bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=10 * KB)
    caps = [run_process(env, caching.create(bytes([i]) * (4 * KB), 1))
            for i in range(3)]
    for cap in caps:
        run_process(env, caching.read(cap))
    assert caching.cached_bytes <= 10 * KB
    # Oldest entry was evicted; rereading it is a miss but still correct.
    misses_before = caching.misses
    assert run_process(env, caching.read(caps[0])) == bytes([0]) * (4 * KB)
    assert caching.misses == misses_before + 1


def test_caching_client_oversized_file_not_cached(env, rpc_rig):
    _bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=1 * KB)
    cap = run_process(env, caching.create(bytes(4 * KB), 1))
    run_process(env, caching.read(cap))
    assert caching.cached_bytes == 0


def test_caching_client_delete_invalidates(env, rpc_rig):
    _bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"bye", 1))
    run_process(env, caching.read(cap))
    run_process(env, caching.delete(cap))
    with pytest.raises(NotFoundError):
        run_process(env, caching.read(cap))


def test_caching_client_rejects_bad_capacity(env, rpc_rig):
    _bullet, client = rpc_rig
    with pytest.raises(ValueError):
        CachingBulletClient(client, capacity_bytes=0)
