"""Coverage for the small supporting modules: units, errors, profiles,
tracing, and the deterministic RNG."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    CapabilityError,
    NoSpaceError,
    ReproError,
    RpcTimeoutError,
    Status,
    error_for_status,
)
from repro.profiles import DEFAULT_TESTBED, DiskProfile, EthernetProfile
from repro.sim import Environment, NullTracer, SeededStream, Tracer, derive_seed
from repro.units import (
    KB,
    MB,
    bandwidth_kb_per_sec,
    fmt_size,
    kbytes,
    mbytes,
    msec,
    to_msec,
    usec,
)


# ------------------------------------------------------------------ units


def test_unit_constants():
    assert KB == 1024
    assert MB == 1024 * 1024
    assert kbytes(2) == 2048
    assert mbytes(1) == MB
    assert msec(5) == pytest.approx(0.005)
    assert usec(5) == pytest.approx(5e-6)
    assert to_msec(0.25) == pytest.approx(250.0)


def test_bandwidth_helper():
    assert bandwidth_kb_per_sec(1024, 1.0) == pytest.approx(1.0)
    assert bandwidth_kb_per_sec(1024, 0.0) == float("inf")


def test_fmt_size_matches_paper_labels():
    assert fmt_size(1) == "1 byte"
    assert fmt_size(16) == "16 bytes"
    assert fmt_size(1024) == "1 Kbytes"
    assert fmt_size(64 * KB) == "64 Kbytes"
    assert fmt_size(MB) == "1 Mbyte"
    assert fmt_size(1536) == "1.5 Kbytes"


# ----------------------------------------------------------------- errors


def test_every_status_maps_to_exception():
    for status in Status:
        if status is Status.OK:
            continue
        exc = error_for_status(int(status), "message")
        assert isinstance(exc, ReproError)
        assert exc.status == status
        assert "message" in str(exc)


def test_error_round_trip_specific_classes():
    assert isinstance(error_for_status(int(Status.CAP_BAD)), CapabilityError)
    assert isinstance(error_for_status(int(Status.NO_SPACE)), NoSpaceError)
    assert isinstance(error_for_status(int(Status.TIMEOUT)), RpcTimeoutError)


def test_default_exception_message():
    exc = NoSpaceError()
    assert "NoSpaceError" in str(exc)


# --------------------------------------------------------------- profiles


def test_disk_profile_derived_values():
    disk = DiskProfile()
    assert disk.rotation_time == pytest.approx(60.0 / 3600)
    assert disk.avg_rotational_latency == pytest.approx(disk.rotation_time / 2)
    assert disk.blocks_per_cylinder == disk.heads * disk.sectors_per_track
    assert disk.total_blocks == disk.capacity_bytes // disk.block_size


def test_ethernet_profile_wire_time():
    eth = EthernetProfile()
    # A minimum-size frame costs 64 bytes on the wire.
    assert eth.wire_time(1) == pytest.approx(64 * 8 / 10e6)
    assert eth.max_payload == eth.mtu - eth.header_bytes


def test_default_testbed_is_self_consistent():
    tb = DEFAULT_TESTBED
    assert tb.bullet.ram_bytes > tb.bullet.reserved_ram_bytes
    assert tb.nfs.buffer_cache_bytes < tb.bullet.ram_bytes
    assert tb.disk.capacity_bytes == 800 * MB


# ---------------------------------------------------------------- tracing


def test_tracer_collects_and_filters():
    env = Environment()
    tracer = Tracer(env=env, categories={"disk"})
    tracer.emit("disk", "read", block=5)
    tracer.emit("rpc", "ignored")
    assert len(tracer.records) == 1
    assert tracer.select("disk")[0].message == "read"
    assert tracer.select("rpc") == []


def test_tracer_sink_called():
    env = Environment()
    seen = []
    tracer = Tracer(env=env, sink=seen.append)
    tracer.emit("x", "hello")
    assert len(seen) == 1
    assert "hello" in str(seen[0])


def test_tracer_dump_and_clear():
    env = Environment()
    tracer = Tracer(env=env)
    tracer.emit("a", "first", value=1)
    tracer.emit("b", "second")
    dump = tracer.dump()
    assert "first" in dump and "second" in dump and "value=1" in dump
    assert "second" not in tracer.dump(categories=["a"])
    tracer.clear()
    assert tracer.records == []


def test_tracer_records_sim_time():
    env = Environment()
    tracer = Tracer(env=env)

    def proc():
        yield env.timeout(1.5)
        tracer.emit("t", "late")

    env.process(proc())
    env.run()
    assert tracer.records[0].time == 1.5


def test_null_tracer_drops_everything():
    env = Environment()
    tracer = NullTracer(env)
    tracer.emit("x", "dropped")
    assert tracer.records == []


def test_disabled_tracer():
    env = Environment()
    tracer = Tracer(env=env, enabled=False)
    tracer.emit("x", "dropped")
    assert tracer.records == []


def test_bullet_server_emits_traces(env):
    from repro.sim import run_process
    from conftest import make_bullet

    tracer = Tracer(env=env)
    bullet = make_bullet(env, tracer=tracer)
    run_process(env, bullet.create(b"traced", 1))
    assert any(r.message == "create" for r in tracer.select("bullet"))


# -------------------------------------------------------------------- rng


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_independent():
    """Draws from one stream must not perturb another with the same
    master seed."""
    a1 = SeededStream(9, "alpha")
    b1 = SeededStream(9, "beta")
    _ = [a1.random() for _ in range(100)]
    b_values = [b1.random() for _ in range(5)]
    b2 = SeededStream(9, "beta")
    assert [b2.random() for _ in range(5)] == b_values


def test_lognormal_bounded_clamps():
    stream = SeededStream(3, "x")
    for _ in range(200):
        v = stream.lognormal_bounded(1024, 3.0, lo=10, hi=100)
        assert 10 <= v <= 100


def test_zipf_index_distribution():
    stream = SeededStream(4, "z")
    counts = [0] * 10
    for _ in range(5000):
        counts[stream.zipf_index(10, skew=1.0)] += 1
    assert counts[0] > counts[4] > counts[9]
    assert sum(counts) == 5000


def test_zipf_index_rejects_empty():
    stream = SeededStream(4, "z")
    with pytest.raises(ValueError):
        stream.zipf_index(0)


@given(n=st.integers(min_value=1, max_value=50),
       skew=st.floats(min_value=0.1, max_value=2.0))
def test_zipf_index_in_range_property(n, skew):
    stream = SeededStream(5, "zz")
    for _ in range(20):
        assert 0 <= stream.zipf_index(n, skew) < n
