"""Model-based tests for the log server and the UNIX emulation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.capability import Capability
from repro.client import LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.logsvc import LogServer
from repro.sim import Environment, run_process
from repro.unixemu import UnixEmulation

from conftest import SMALL_DISK, make_bullet, small_testbed


# ------------------------------------------------------------- log server


log_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "read", "reboot"]),
        st.binary(min_size=0, max_size=200),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=30,
)


@given(script=log_ops)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_log_server_matches_list_model(script):
    """Appends/reads against a log, with reboots interleaved: the log
    must always equal the reference list (append-only durability)."""
    env = Environment()
    disk = VirtualDisk(env, SMALL_DISK, name="logd")
    logs = LogServer(env, disk, small_testbed(), max_logs=4)
    logs.format()
    env.run(until=env.process(logs.boot()))
    cap = run_process(env, logs.create_log())
    model: list = []

    for op, payload, from_seq in script:
        if op == "append":
            seq = run_process(env, logs.append(cap, payload))
            assert seq == len(model)
            model.append(payload)
        elif op == "read":
            start = from_seq % (len(model) + 1)
            got = run_process(env, logs.read(cap, from_seq=start))
            assert got == model[start:]
        else:  # reboot
            logs = LogServer(env, disk, small_testbed(), name="logsvc")
            env.run(until=env.process(logs.boot()))
            cap = Capability(port=logs.port, object=cap.object,
                             rights=cap.rights, check=cap.check)
    assert run_process(env, logs.read(cap)) == model
    assert run_process(env, logs.length(cap)) == len(model)


# ---------------------------------------------------------- unix emulation


unix_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "lseek", "truncate", "read"]),
        st.integers(min_value=0, max_value=6000),
        st.binary(min_size=0, max_size=700),
    ),
    max_size=25,
)


@given(script=unix_ops)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_unixemu_fd_matches_bytearray_model(script):
    """One open file descriptor driven by random writes/seeks/truncates
    vs a local bytearray; then close-and-reopen must read back the
    committed image exactly."""
    env = Environment()
    bullet = make_bullet(env, testbed=small_testbed(inode_count=2048))
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    root = run_process(env, dirs.create_directory())
    unix = UnixEmulation(env, LocalBulletStub(bullet), dirs, root)

    def scenario():
        fd = yield from unix.open("/model-file", "w")
        model = bytearray()
        offset = 0
        for op, arg, payload in script:
            if op == "write":
                yield from unix.write(fd, payload)
                end = offset + len(payload)
                if end > len(model):
                    model.extend(bytes(end - len(model)))
                model[offset:end] = payload
                offset = end
            elif op == "lseek":
                offset = arg
                yield from unix.lseek(fd, arg)
            elif op == "truncate":
                length = arg % (len(model) + 1)
                yield from unix.ftruncate(fd, length)
                del model[length:]
            else:
                data = yield from unix.read(fd, arg)
                expected = bytes(model[offset:offset + arg])
                assert data == expected
                offset += len(data)
        yield from unix.close(fd)
        fd = yield from unix.open("/model-file", "r")
        final = yield from unix.read(fd, len(model) + 1)
        yield from unix.close(fd)
        assert final == bytes(model)
        return True

    assert run_process(env, scenario())
