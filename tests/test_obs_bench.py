"""Integration tests for the observability plane: the PR 4 accounting
bugfixes (cache double count, error chokepoint, MODIFY bytes), the
shared-registry wiring, request spans end-to-end, and the bench
emitter's byte-identical artifact."""

import json
from pathlib import Path

import pytest

from repro.capability import Capability
from repro.client import BulletClient
from repro.disk import VirtualDisk
from repro.errors import NotFoundError, Status
from repro.net import Ethernet, RpcRequest, RpcTransport
from repro.nfs import NfsServer
from repro.obs import pair_spans, render_json, render_text
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, Tracer, run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


# ------------------------------------------------- cache double count


def test_cache_is_the_single_counting_authority(env, bullet):
    """The PR 4 bugfix: the server's inode.index probe delegates to the
    cache, so a request can never be counted twice."""
    stats = bullet.cache.stats
    cap = run_process(env, bullet.create(b"x" * 1024, 1))
    assert stats.lookups == 0  # create inserts; it does not probe
    run_process(env, bullet.read(cap))
    assert (stats.lookups, stats.hits, stats.misses) == (1, 1, 0)
    bullet.evict(cap.object)
    run_process(env, bullet.read(cap))
    assert (stats.lookups, stats.hits, stats.misses) == (2, 1, 1)
    run_process(env, bullet.read(cap))
    assert (stats.lookups, stats.hits, stats.misses) == (3, 2, 1)


def test_conservation_and_status_hit_rate_match_registry(env, bullet):
    caps = [run_process(env, bullet.create(bytes(s), 1))
            for s in (1, 256, 4 * KB, 64 * KB)]
    for cap in caps:
        run_process(env, bullet.read(cap))
    bullet.evict(caps[0].object)
    run_process(env, bullet.read(caps[0]))
    run_process(env, bullet.modify(caps[1], 0, 0, b"prefix", 1))
    run_process(env, bullet.delete(caps[2]))

    reg = bullet.metrics
    lookups = reg.value("repro_cache_lookups_total", cache="bullet")
    hits = reg.value("repro_cache_hits_total", cache="bullet")
    misses = reg.value("repro_cache_misses_total", cache="bullet")
    assert hits + misses == lookups
    assert lookups == bullet.cache.stats.lookups
    status = bullet.status()
    assert status["cache_hit_rate"] == pytest.approx(hits / (hits + misses))
    # std_status reads the very same registry counters.
    assert status["reads"] == reg.value("repro_server_reads_total",
                                        server="bullet")


# -------------------------------------------------- MODIFY byte accounting


def test_modify_accounts_bytes(env, bullet):
    cap = run_process(env, bullet.create(b"hello world", 1))
    assert bullet.stats.bytes_modified == 0
    run_process(env, bullet.modify(cap, 6, 5, b"obs", 1))
    # New file is "hello obs" (9 bytes); MODIFY now accounts it.
    assert bullet.stats.bytes_modified == 9
    # Conservation: the derived file's bytes also flow through CREATE.
    assert bullet.stats.bytes_created == 11 + 9


# ------------------------------------------------------ error chokepoint


@pytest.fixture
def rpc_rig(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    client = BulletClient(env, rpc, bullet.port)
    return bullet, rpc, client


def test_error_replies_route_through_one_chokepoint(env, rpc_rig):
    bullet, rpc, client = rpc_rig
    good = run_process(env, client.create(b"ok", 1))
    bogus = Capability(port=bullet.port, object=9999, rights=0xFF, check=1)
    with pytest.raises(NotFoundError):
        run_process(env, client.read(bogus))
    # An unknown opcode is a different error family through the same path.
    reply = run_process(
        env, rpc.trans(bullet.port, RpcRequest(opcode=99, cap=good))
    )
    assert reply.status == int(Status.BAD_REQUEST)
    reg = bullet.metrics
    assert reg.value("repro_server_error_replies_total",
                     server="bullet", status="NOT_FOUND") == 1
    assert reg.value("repro_server_error_replies_total",
                     server="bullet", status="BAD_REQUEST") == 1
    # The per-status family and the scalar errors counter agree.
    assert reg.total("repro_server_error_replies_total") == 2
    assert bullet.stats.errors == 2


def test_nfs_errors_are_counted(env):
    """Before PR 4 the NFS serve loop marshalled errors without any
    accounting at all."""
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    disk = VirtualDisk(env, SMALL_DISK, name="nfsdisk")
    server = NfsServer(env, disk, small_testbed(), transport=rpc)
    server.format()
    run_process(env, server.boot())
    reply = run_process(
        env, rpc.trans(server.port, RpcRequest(opcode=99))
    )
    assert reply.status == int(Status.BAD_REQUEST)
    assert server.metrics.value("repro_server_error_replies_total",
                                server="nfs", status="BAD_REQUEST") == 1


# ------------------------------------------------------------ spans


def test_read_decomposes_into_spans(env):
    tracer = Tracer(env=env, categories={"span"})
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile(), tracer=tracer)
    bullet = make_bullet(env, transport=rpc, tracer=tracer)
    client = BulletClient(env, rpc, bullet.port)

    cap = run_process(env, client.create(b"d" * 4096, 1))
    run_process(env, client.read(cap))          # warm: cache only
    bullet.evict(cap.object)
    run_process(env, client.read(cap))          # cold: disk + cache

    spans = pair_spans(tracer.select("span"))   # raises if any unclosed
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    assert {"rpc.trans", "rpc.queue", "server.op",
            "server.cache", "server.net"} <= set(by_name)
    assert len(by_name["server.disk"]) == 1     # only the cold read
    assert len(by_name["server.cache"]) == 2    # both reads memcpy
    # Every server.op nests inside some rpc.trans window.
    for op in by_name["server.op"]:
        assert any(t.begin <= op.begin and op.end <= t.end
                   for t in by_name["rpc.trans"])
    # The op-latency histogram saw both reads.
    hist = bullet.metrics.find("repro_server_op_seconds",
                               server="bullet", op="READ")
    assert hist is not None and hist.count == 2
    assert hist.total == pytest.approx(
        sum(s.duration for s in by_name["server.op"]
            if dict(s.begin_fields).get("op") == "READ"))


# ------------------------------------------------ shared-registry wiring


def test_make_rig_shares_one_registry():
    from repro.bench import make_rig

    rig = make_rig(background_load=False, nfs_churn=False)
    reg = rig.metrics
    assert rig.bullet.metrics is reg
    assert rig.nfs.metrics is reg
    assert rig.rpc.metrics is reg
    assert rig.bullet.cache.stats.registry is reg
    # Disks and the segment registered their instruments there too.
    assert reg.find("repro_disk_writes_total", disk="bullet-d0") is not None
    assert reg.find("repro_ethernet_packets_total",
                    segment="ether") is not None
    assert reg.find("repro_freelist_free_units",
                    area="bullet:disk") is not None


def test_freelist_gauges_track_the_arena(env, bullet):
    reg = bullet.metrics
    disk_free = reg.find("repro_freelist_free_units", area="bullet:disk")
    assert disk_free.value == bullet.disk_free.free_units
    run_process(env, bullet.create(bytes(8 * KB), 1))
    assert disk_free.value == bullet.disk_free.free_units
    frag = reg.find("repro_freelist_fragmentation", area="bullet:disk")
    assert frag.value == bullet.disk_free.external_fragmentation()
    # The cache arena's gauges survive a compaction (arena rebuild).
    cache_free = reg.find("repro_freelist_free_units", area="bullet:cache")
    assert cache_free.value == bullet.cache.free_bytes
    bullet.cache.compact()
    run_process(env, bullet.create(bytes(4 * KB), 1))
    assert cache_free.value == bullet.cache.free_bytes


def test_retransmit_counter_lives_in_the_registry(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    assert rpc.stats_retransmits == 0
    rpc.stats_retransmits += 3
    assert rpc.stats_retransmits == 3
    assert rpc.metrics.value("repro_rpc_retransmits_total") == 3


# ------------------------------------------------------ determinism


def _seeded_workload(seed: int):
    env = Environment()
    bullet = make_bullet(env, master_seed=seed)
    caps = [run_process(env, bullet.create(bytes((i + 1) * 100), 2))
            for i in range(5)]
    for cap in caps:
        run_process(env, bullet.read(cap))
    bullet.evict(caps[3].object)
    run_process(env, bullet.read(caps[3]))
    run_process(env, bullet.delete(caps[0]))
    return bullet.metrics


def test_same_seed_runs_export_byte_identically():
    a = _seeded_workload(1989)
    b = _seeded_workload(1989)
    assert render_text(a) == render_text(b)
    assert render_json(a) == render_json(b)


# ---------------------------------------------------- bench emitter


def test_bench_emitter_is_byte_identical(tmp_path):
    from repro.obs.bench import canonical_json, run_bench, write_bench

    one = run_bench(seed=7, repeats=1, sizes=[1, 1024])
    two = run_bench(seed=7, repeats=1, sizes=[1, 1024])
    assert canonical_json(one) == canonical_json(two)
    inv = one["invariants"]
    assert inv["cache_hits"] + inv["cache_misses"] == inv["cache_lookups"]
    assert "1024" in one["fig2_bullet"]
    assert "READ" in one["fig2_bullet"]["1024"]

    path = tmp_path / "bench.json"
    top = tmp_path / "top.json"
    payload = write_bench(str(path), str(top), seed=7, repeats=1,
                          sizes=[1, 1024])
    assert path.read_bytes() == top.read_bytes()
    assert json.loads(path.read_text()) == payload


def test_committed_bench_artifact_is_current_schema():
    repo = Path(__file__).resolve().parents[1]
    top = json.loads((repo / "BENCH_PR4.json").read_text())
    results = json.loads(
        (repo / "benchmarks" / "results" / "bench.json").read_text())
    assert top == results
    assert top["meta"]["seed"] == 1989
    for figure in ("fig2_bullet", "fig3_nfs"):
        for row in top[figure].values():
            for cell in row.values():
                assert set(cell) == {"delay_ms", "bandwidth_kb_s"}
    inv = top["invariants"]
    assert inv["cache_hits"] + inv["cache_misses"] == inv["cache_lookups"]


def test_bench_pr5_emitter_is_byte_identical():
    from repro.obs.bench import canonical_json, run_bench_pr5

    one = run_bench_pr5(seed=7, duration=0.5)
    two = run_bench_pr5(seed=7, duration=0.5)
    assert canonical_json(one) == canonical_json(two)
    scaling = one["throughput_vs_workers_ops_per_sec"]
    assert scaling["1"] < scaling["2"] < scaling["4"]


def test_committed_bench_pr5_artifact_is_current_schema():
    repo = Path(__file__).resolve().parents[1]
    top = json.loads((repo / "BENCH_PR5.json").read_text())
    results = json.loads(
        (repo / "benchmarks" / "results" / "bench_pr5.json").read_text())
    assert top == results
    assert top["meta"]["seed"] == 1989
    scaling = top["throughput_vs_workers_ops_per_sec"]
    assert scaling["1"] < scaling["2"] < scaling["4"]
    for discipline in ("fcfs", "elevator"):
        cell = top["cold_read_disciplines"][discipline]
        assert set(cell) == {"ops_per_sec", "seeks"}
    # The elevator must be load-bearing in the committed artifact.
    assert (top["cold_read_disciplines"]["elevator"]["seeks"]
            < top["cold_read_disciplines"]["fcfs"]["seeks"])
