"""Tests for the model checker itself: the oracles, the kernel tie
hook, the explorer's determinism, and the shrinker's minimality
guarantee. The checker is only trustworthy if these hold — a
nondeterministic explorer or an unsound shrinker silently weakens every
result it reports.
"""

import pytest

from repro.capability import Capability
from repro.core.locks import FileLockTable
from repro.errors import ConsistencyError
from repro.modelcheck import (
    CheckRig,
    Explorer,
    RefDirectory,
    RefModel,
    Scope,
    check_scope,
)
from repro.sim import Environment

# The acceptance scope from the issue: 2 clients x 3 ops x 1 crash
# point, exhaustible in under a second.
ACCEPTANCE = Scope(clients=2, ops_per_client=3, crashes=1)

# A deliberately broken configuration: the server writes P-FACTOR 1
# while the durability invariant demands tolerance 2. Needs a crash
# (cold cache => disk-queue asymmetry) plus overlapping ops plus a
# replica loss for the violation to be reachable.
BROKEN = Scope(p_factor=1, tolerance=2, replica_losses=1, crashes=1,
               overlap=True)


def cap(obj, check=7):
    return Capability(port=1, object=obj, rights=0xFF, check=check)


# ------------------------------------------------------------------ RefModel


class TestRefModel:
    def test_create_read_delete_lifecycle(self):
        model = RefModel()
        model.create(cap(1), b"one")
        model.create(cap(2), b"two", confirmed=False)
        assert len(model) == 2
        assert model.data(cap(1)) == b"one"
        assert model.confirmed_files() == [(cap(1), b"one")]
        model.delete(cap(1))
        assert cap(1) not in model
        assert model.absence_plausible(cap(1))
        assert not model.absence_plausible(cap(2))

    def test_live_capability_reuse_is_an_error(self):
        model = RefModel()
        model.create(cap(1), b"x")
        with pytest.raises(ConsistencyError):
            model.create(cap(1), b"y")

    def test_gone_capability_may_be_recycled(self):
        # A reboot reseeds the server's check generator, so a deleted
        # (object, check) pair can legitimately be reissued.
        model = RefModel()
        model.create(cap(1), b"x")
        model.delete(cap(1))
        model.create(cap(1), b"y")
        assert model.data(cap(1)) == b"y"

    def test_crash_makes_unconfirmed_files_uncertain(self):
        model = RefModel()
        model.create(cap(1), b"durable")
        model.create(cap(2), b"volatile", confirmed=False)
        model.crash()
        assert not model.is_uncertain(cap(1))
        assert model.is_uncertain(cap(2))
        # Content is never uncertain: the bytes are retained.
        assert model.data(cap(2)) == b"volatile"
        # A successful READ resolves presence.
        model.resolve_present(cap(2))
        assert not model.has_uncertain()

    def test_resolve_absent_requires_uncertainty(self):
        model = RefModel()
        model.create(cap(1), b"x")
        model.mark_uncertain(cap(1))
        model.resolve_absent(cap(1))
        assert cap(1) not in model
        with pytest.raises(ConsistencyError):
            model.resolve_absent(cap(1))

    def test_pick_is_deterministic_object_order(self):
        model = RefModel()
        for obj in (5, 3, 9):
            model.create(cap(obj), b"")
        assert [c.object for c in model.caps()] == [3, 5, 9]
        assert model.pick(0).object == 3
        assert model.pick(4).object == 5
        assert RefModel().pick(0) is None

    def test_clamp_and_splice_match_the_server_arithmetic(self):
        offset, delete_bytes = RefModel.clamp_modify(10, 27, 99)
        assert offset == 27 % 11 == 5
        assert delete_bytes == 5
        assert RefModel.spliced(b"0123456789", 5, 5, b"AB") == b"01234AB"

    def test_digest_tracks_state(self):
        a, b = RefModel(), RefModel()
        assert a.digest() == b.digest()
        a.create(cap(1), b"x")
        assert a.digest() != b.digest()
        b.create(cap(1), b"x")
        assert a.digest() == b.digest()


class TestRefDirectory:
    def test_append_replace_remove(self):
        d = RefDirectory()
        assert d.append("a", cap(1))
        assert not d.append("a", cap(2))
        assert d.lookup("a") == cap(1)
        assert d.replace("a", cap(2)) == cap(1)
        assert d.replace("missing", cap(3)) is None
        assert d.names() == ["a"]
        assert d.remove("a") == cap(2)
        assert d.remove("a") is None
        assert len(d) == 0


# ------------------------------------------------------------ kernel tie hook


class TestTieHook:
    @staticmethod
    def _race(env, order):
        """Two events scheduled for the same instant and priority."""
        for name in ("first", "second"):
            ev = env.timeout(1.0)
            ev.callbacks.append(lambda _ev, n=name: order.append(n))

    def test_no_hook_and_index_zero_match_reference_order(self):
        reference = []
        env = Environment(fast=False)
        self._race(env, reference)
        env.run(None)
        assert reference == ["first", "second"]

        hooked = []
        env = Environment(fast=False)
        env.set_tie_hook(lambda tied: 0)
        self._race(env, hooked)
        env.run(None)
        assert hooked == reference

    def test_nonzero_choice_permutes_the_tie(self):
        order = []
        env = Environment(fast=False)
        env.set_tie_hook(lambda tied: len(tied) - 1)
        self._race(env, order)
        env.run(None)
        assert order == ["second", "first"]

    def test_hook_sees_tied_entries_in_eid_order(self):
        counts = []
        env = Environment(fast=False)

        def hook(tied):
            counts.append(len(tied))
            eids = [entry[2] for entry in tied]
            assert eids == sorted(eids)
            return 0

        env.set_tie_hook(hook)
        self._race(env, [])
        env.run(None)
        assert 2 in counts

    def test_out_of_range_choice_is_an_error(self):
        env = Environment(fast=False)
        env.set_tie_hook(lambda tied: len(tied))
        self._race(env, [])
        with pytest.raises(ConsistencyError):
            env.run(None)

    def test_clearing_the_hook_restores_the_fast_path(self):
        env = Environment(fast=False)
        env.set_tie_hook(lambda tied: 0)
        env.set_tie_hook(None)
        order = []
        self._race(env, order)
        env.run(None)
        assert order == ["first", "second"]


# ------------------------------------------------------- lock-table checking


class TestLockTableInvariants:
    def test_clean_table_passes(self, env):
        table = FileLockTable(env)
        table.check_invariants()

    def test_held_count_drift_is_caught(self, env):
        table = FileLockTable(env)
        grant = table.acquire_read(3)
        env.run(until=grant)
        table.check_invariants()
        table._held_count += 1  # simulate accounting drift
        with pytest.raises(ConsistencyError):
            table.check_invariants()


# ------------------------------------------------------- explorer determinism


class TestExplorer:
    def test_acceptance_scope_exhausts_deterministically(self):
        """The issue's acceptance scope: 2 clients x 3 ops x 1 crash
        point must exhaust with the same explored-state count and
        fingerprint on two same-seed runs."""
        first = Explorer(ACCEPTANCE, seed=0).dfs()
        second = Explorer(ACCEPTANCE, seed=0).dfs()
        assert first.violation is None
        assert first.states == second.states
        assert first.transitions == second.transitions
        assert first.leaves == second.leaves
        assert first.fingerprint == second.fingerprint
        assert first.states > 100  # genuinely explored, not degenerate

    def test_walk_visits_subset_of_dfs_on_exhaustible_scope(self):
        """Random walks over an exhaustible scope can only reach states
        the DFS also reached: walk-visited ⊆ dfs-visited, and both modes
        agree the scope is violation-free."""
        dfs = Explorer(ACCEPTANCE, seed=0)
        dfs_stats = dfs.dfs()
        walker = Explorer(ACCEPTANCE, seed=17)
        walk_stats = walker.walk(walks=12, steps=24)
        assert dfs_stats.violation is None
        assert walk_stats.violation is None
        assert walker.visited <= dfs.visited

    def test_walk_is_seed_deterministic(self):
        a = Explorer(ACCEPTANCE, seed=23).walk(walks=6, steps=20)
        b = Explorer(ACCEPTANCE, seed=23).walk(walks=6, steps=20)
        assert a.fingerprint == b.fingerprint
        assert a.transitions == b.transitions

    def test_broken_scope_yields_minimal_counterexample(self):
        """Dropping the replication factor below the claimed tolerance
        must produce a violation, and the shrunk trace must be
        1-minimal: it still fails, and removing any single transition
        makes it pass."""
        explorer = Explorer(BROKEN, seed=0)
        stats = explorer.dfs()
        assert stats.violation is not None
        assert stats.violation["family"] == "durability"
        counterexample = explorer.counterexample
        records = counterexample.records
        assert counterexample.shrunk_from >= len(records)
        assert explorer.replay_fails(records) is not None
        for index in range(len(records)):
            shorter = records[:index] + records[index + 1:]
            assert explorer.replay_fails(shorter) is None, (
                f"dropping transition {index} ({records[index].label}) "
                f"still fails: trace is not 1-minimal")

    def test_scope_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            check_scope(Scope(clients=0))
        with pytest.raises(ValueError):
            check_scope(Scope(p_factor=3, n_disks=2))
        with pytest.raises(ValueError):
            check_scope(Scope(inject="bogus"))

    def test_injected_leak_is_caught_and_shrinks_to_one_step(self):
        scope = Scope(clients=1, ops_per_client=2, crashes=0, inject="leak")
        explorer = Explorer(scope, seed=0)
        stats = explorer.dfs()
        assert stats.violation is not None
        assert stats.violation["family"] == "locks"
        assert explorer.counterexample.labels() == ["inject:leak"]


# ------------------------------------------------------------- rig semantics


class TestCheckRig:
    def test_enabled_labels_are_canonical_and_budgeted(self):
        rig = CheckRig(ACCEPTANCE)
        try:
            labels = rig.enabled()
            assert labels[0] == "c0"
            assert "crash" in labels
            assert "restart" not in labels  # server is up
            rig.apply("crash")
            assert "crash" not in rig.enabled()  # budget of 1 used
            assert "restart" in rig.enabled()
        finally:
            rig.teardown()

    def test_state_key_stable_under_replay(self):
        trace = ["c0", "c1", "crash", "restart", "c0"]
        keys = []
        for _run in range(2):
            rig = CheckRig(ACCEPTANCE)
            try:
                for label in trace:
                    rig.apply(label)
                keys.append(rig.state_key())
            finally:
                rig.teardown()
        assert keys[0] == keys[1]


# ------------------------------------------------------------ deep exploration


@pytest.mark.explore
@pytest.mark.slow
def test_correct_config_survives_full_fault_scope():
    """The big one: overlapping ops x crash/restart x replica loss over
    a correctly configured server (P-FACTOR 2, tolerance 2) exhausts
    with no violation. This is the scope that caught the Ethernet
    medium-grant leak; several thousand states, tens of seconds."""
    scope = Scope(p_factor=2, replica_losses=1, crashes=1, overlap=True)
    stats = Explorer(scope, seed=0).dfs()
    assert stats.violation is None
    assert stats.states > 3000
