"""Tests for the NFS baseline: buffer cache, FFS, server and client."""

import pytest

from repro.disk import VirtualDisk
from repro.errors import (
    BadRequestError,
    ExistsError,
    NoSpaceError,
    NotFoundError,
)
from repro.nfs import (
    FFS,
    BufferCache,
    FileHandle,
    MODE_DIR,
    MODE_FILE,
    NfsClient,
    NfsServer,
    ROOT_INUM,
    Superblock,
    decode_directory,
    encode_directory,
)
from repro.sim import Environment, SeededStream, run_process
from repro.units import KB, MB

from conftest import SMALL_DISK, small_testbed


def make_fs(env, cache_bytes=512 * KB, fs_block=8192):
    disk = VirtualDisk(env, SMALL_DISK, name="nfsdisk")
    cache = BufferCache(env, disk, cache_bytes, fs_block)
    fs = FFS(env, disk, cache, fs_block_size=fs_block, ninodes=128)
    fs.format()
    run_process(env, fs.mount())
    return fs, cache, disk


def make_server(env, churn=False):
    disk = VirtualDisk(env, SMALL_DISK, name="nfsdisk")
    server = NfsServer(env, disk, small_testbed(), background_churn=churn)
    server.format()
    run_process(env, server.boot())
    return server


# ----------------------------------------------------------- buffer cache


def test_cache_read_miss_then_hit(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    disk.write_raw(16, b"cached block!")
    cache = BufferCache(env, disk, 64 * KB, 8192)
    data1 = run_process(env, cache.read_block(1))
    assert data1[:13] == b"cached block!"
    assert cache.stats.misses == 1
    t_before = env.now
    data2 = run_process(env, cache.read_block(1))
    assert data2 == data1
    assert cache.stats.hits == 1
    assert env.now == t_before  # hit costs no disk time


def test_cache_write_through_reaches_disk(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 64 * KB, 8192)
    run_process(env, cache.write_block(2, b"synchronous", sync=True))
    assert disk.read_raw(32, 1)[:11] == b"synchronous"


def test_cache_delayed_write_needs_sync(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 64 * KB, 8192)
    run_process(env, cache.write_block(2, b"lazy", sync=False))
    assert disk.read_raw(32, 1)[:4] == bytes(4)  # not on disk yet
    run_process(env, cache.sync())
    assert disk.read_raw(32, 1)[:4] == b"lazy"


def test_cache_lru_eviction(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 2 * 8192, 8192)  # 2 blocks
    for fbn in range(3):
        run_process(env, cache.read_block(fbn))
    assert not cache.contains(0)
    assert cache.contains(2)
    assert cache.stats.evictions == 1


def test_cache_rejects_misaligned_block_size(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    with pytest.raises(ValueError):
        BufferCache(env, disk, 64 * KB, 1000)


def test_cache_churn_evicts_deterministically(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 64 * 8192, 8192)
    for fbn in range(32):
        run_process(env, cache.read_block(fbn))
    stream = SeededStream(11, "churn")
    env.process(cache.churn_process(stream, churn_per_second=50.0))
    env.run(until=env.now + 1.0)
    assert cache.stats.churned > 10
    assert cache.cached_blocks < 32


# -------------------------------------------------------------------- FFS


def test_directory_encoding_roundtrip():
    entries = {"alpha": 3, "beta": 77}
    assert decode_directory(encode_directory(entries)) == entries


def test_ffs_format_and_mount(env):
    fs, _cache, _disk = make_fs(env)
    assert fs.sb.data_blocks > 0
    root = run_process(env, fs.inode_read(ROOT_INUM))
    assert root.mode == MODE_DIR


def test_ffs_write_read_small(env):
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, b"hello ffs"))
    assert run_process(env, fs.read(inum, 0, 100)) == b"hello ffs"


def test_ffs_partial_block_rmw(env):
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, b"AAAA"))
    run_process(env, fs.write(inum, 2, b"BB"))
    assert run_process(env, fs.read(inum, 0, 4)) == b"AABB"


def test_ffs_large_file_uses_indirect_blocks(env):
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    size = 200 * KB  # > 12 * 8 KB direct span
    payload = bytes(range(256)) * (size // 256)
    run_process(env, fs.write(inum, 0, payload))
    inode = run_process(env, fs.inode_read(inum))
    assert inode.indirect != 0
    assert run_process(env, fs.read(inum, 0, size)) == payload


def test_ffs_read_at_offset(env):
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, bytes(10 * KB)))
    run_process(env, fs.write(inum, 10 * KB, b"MARKER"))
    assert run_process(env, fs.read(inum, 10 * KB, 6)) == b"MARKER"


def test_ffs_read_past_eof(env):
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, b"tiny"))
    assert run_process(env, fs.read(inum, 100, 10)) == b""
    assert run_process(env, fs.read(inum, 2, 10)) == b"ny"


def test_ffs_cylinder_groups_scatter_large_files(env):
    """FFS policy: a large file's blocks span multiple cylinder groups,
    with a group switch every maxbpg blocks."""
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, bytes(400 * KB)))
    inode = run_process(env, fs.inode_read(inum))

    def group_of(fbn):
        per_group = fs.sb.data_blocks // fs.cg_count
        return (fbn - fs.sb.data_start) // per_group

    groups = set()
    nblocks = (400 * KB) // fs.fs_block_size
    for fbi in range(nblocks):
        fbn = run_process(env, fs.bmap(inum, inode, fbi))
        groups.add(group_of(fbn))
    assert len(groups) >= 3


def test_ffs_remove_frees_everything(env):
    fs, _c, _d = make_fs(env)
    free_before = fs.free_bytes
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, bytes(200 * KB)))
    assert fs.free_bytes < free_before
    run_process(env, fs.remove(inum))
    assert fs.free_bytes == free_before
    with pytest.raises(NotFoundError):
        run_process(env, fs.read(inum, 0, 1))


def test_ffs_inode_exhaustion(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 256 * KB, 8192)
    fs = FFS(env, disk, cache, ninodes=4)
    fs.format()
    run_process(env, fs.mount())
    for _ in range(2):  # inodes 2, 3 (0 reserved, 1 root)
        run_process(env, fs.alloc_inode(MODE_FILE))
    with pytest.raises(NoSpaceError):
        run_process(env, fs.alloc_inode(MODE_FILE))


def test_ffs_dir_operations(env):
    fs, _c, _d = make_fs(env)
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.dir_add(ROOT_INUM, "file.txt", inum))
    assert run_process(env, fs.dir_lookup(ROOT_INUM, "file.txt")) == inum
    with pytest.raises(ExistsError):
        run_process(env, fs.dir_add(ROOT_INUM, "file.txt", inum))
    assert run_process(env, fs.dir_remove(ROOT_INUM, "file.txt")) == inum
    with pytest.raises(NotFoundError):
        run_process(env, fs.dir_lookup(ROOT_INUM, "file.txt"))


def test_ffs_persistence_across_remount(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 256 * KB, 8192)
    fs = FFS(env, disk, cache)
    fs.format()
    run_process(env, fs.mount())
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    run_process(env, fs.write(inum, 0, b"survives remount"))
    run_process(env, fs.dir_add(ROOT_INUM, "f", inum))
    run_process(env, cache.sync())
    # Fresh cache + FFS over the same disk.
    cache2 = BufferCache(env, disk, 256 * KB, 8192)
    fs2 = FFS(env, disk, cache2)
    run_process(env, fs2.mount())
    assert run_process(env, fs2.dir_lookup(ROOT_INUM, "f")) == inum
    assert run_process(env, fs2.read(inum, 0, 100)) == b"survives remount"
    assert fs2.free_bytes == fs.free_bytes


# ------------------------------------------------------------- NFS server


def test_nfs_create_write_read(env):
    server = make_server(env)
    root = server.root_handle
    fh = run_process(env, server.create(root, "data.bin"))
    run_process(env, server.write(fh, 0, b"nfs payload"))
    assert run_process(env, server.read(fh, 0, 8192)) == b"nfs payload"


def test_nfs_lookup_and_getattr(env):
    server = make_server(env)
    fh = run_process(env, server.create(server.root_handle, "x"))
    run_process(env, server.write(fh, 0, bytes(100)))
    found = run_process(env, server.lookup(server.root_handle, "x"))
    assert found == fh
    attrs = run_process(env, server.getattr(fh))
    assert attrs["mode"] == MODE_FILE
    assert attrs["size"] == 100
    assert attrs["mtime_ms"] >= 0


def test_nfs_stale_handle_after_remove(env):
    server = make_server(env)
    fh = run_process(env, server.create(server.root_handle, "gone"))
    run_process(env, server.remove(server.root_handle, "gone"))
    with pytest.raises(NotFoundError):
        run_process(env, server.getattr(fh))
    # Re-creating bumps the generation: the old handle stays stale.
    fh2 = run_process(env, server.create(server.root_handle, "gone"))
    assert fh2.inum == fh.inum and fh2.generation != fh.generation
    with pytest.raises(NotFoundError):
        run_process(env, server.read(fh, 0, 10))


def test_nfs_transfer_size_enforced(env):
    server = make_server(env)
    fh = run_process(env, server.create(server.root_handle, "x"))
    with pytest.raises(BadRequestError):
        run_process(env, server.read(fh, 0, 16 * KB))
    with pytest.raises(BadRequestError):
        run_process(env, server.write(fh, 0, bytes(16 * KB)))


def test_nfs_write_is_synchronous(env):
    """A WRITE reply means the data is on disk: a post-write crash of
    the cache must not lose it."""
    server = make_server(env)
    fh = run_process(env, server.create(server.root_handle, "durable"))
    run_process(env, server.write(fh, 0, b"stable storage"))
    # Blow away the cache entirely and reread through a fresh server.
    server2 = NfsServer(env, server.disk, small_testbed(), name="nfs2")
    run_process(env, server2.boot())
    fh2 = run_process(env, server2.lookup(server2.root_handle, "durable"))
    assert run_process(env, server2.read(fh2, 0, 8192)) == b"stable storage"


def test_nfs_mkdir_and_readdir(env):
    server = make_server(env)
    sub = run_process(env, server.mkdir(server.root_handle, "subdir"))
    run_process(env, server.create(sub, "inner"))
    assert run_process(env, server.readdir(server.root_handle)) == ["subdir"]
    assert run_process(env, server.readdir(sub)) == ["inner"]


# ------------------------------------------------------------- NFS client


def make_client(env):
    server = make_server(env)
    client = NfsClient(env, small_testbed(), server=server)
    return client, server


def test_client_creat_write_close_open_read(env):
    client, _server = make_client(env)
    payload = bytes(range(256)) * 64  # 16 KB => two 8 KB RPCs

    def writer():
        fd = yield from client.creat("/file.bin")
        yield from client.write(fd, payload)
        yield from client.close(fd)

    run_process(env, writer())

    def reader():
        fd = yield from client.open("/file.bin")
        yield from client.lseek(fd, 0)
        data = yield from client.read(fd, len(payload))
        yield from client.close(fd)
        return data

    assert run_process(env, reader()) == payload


def test_client_paths_resolve_through_directories(env):
    client, _server = make_client(env)

    def setup():
        yield from client.mkdir("/home")
        yield from client.mkdir("/home/user")
        fd = yield from client.creat("/home/user/doc")
        yield from client.write(fd, b"nested")
        yield from client.close(fd)
        fd = yield from client.open("/home/user/doc")
        return (yield from client.read(fd, 100))

    assert run_process(env, setup()) == b"nested"


def test_client_unlink(env):
    client, _server = make_client(env)

    def scenario():
        fd = yield from client.creat("/temp")
        yield from client.close(fd)
        yield from client.unlink("/temp")
        try:
            yield from client.open("/temp")
        except NotFoundError:
            return "gone"

    assert run_process(env, scenario()) == "gone"


def test_client_bad_fd(env):
    client, _server = make_client(env)

    def scenario():
        try:
            yield from client.read(99, 10)
        except BadRequestError:
            return "bad fd"

    assert run_process(env, scenario()) == "bad fd"


def test_client_reads_cost_per_chunk_time(env):
    """64 KB must cost roughly 8x the per-chunk time of 8 KB (no
    read-ahead, sequential RPCs)."""
    client, _server = make_client(env)

    def write_file(name, size):
        fd = yield from client.creat(name)
        yield from client.write(fd, bytes(size))
        yield from client.close(fd)

    run_process(env, write_file("/small", 8 * KB))
    run_process(env, write_file("/large", 64 * KB))

    def timed_read(name, size):
        fd = yield from client.open(name)
        t0 = env.now
        yield from client.read(fd, size)
        return env.now - t0

    t_small = run_process(env, timed_read("/small", 8 * KB))
    t_large = run_process(env, timed_read("/large", 64 * KB))
    assert 5 * t_small < t_large < 12 * t_small


def test_client_over_rpc_plane(env):
    """Full network path: client -> RPC -> server."""
    from repro.net import Ethernet, RpcTransport
    from repro.profiles import CpuProfile, EthernetProfile

    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    disk = VirtualDisk(env, SMALL_DISK, name="nfsdisk")
    server = NfsServer(env, disk, small_testbed(), transport=rpc)
    server.format()
    run_process(env, server.boot())
    client = NfsClient(env, small_testbed(), rpc=rpc, server_port=server.port)

    def scenario():
        fd = yield from client.creat("/net.bin")
        yield from client.write(fd, b"over the wire")
        yield from client.close(fd)
        fd = yield from client.open("/net.bin")
        return (yield from client.read(fd, 100))

    assert run_process(env, scenario()) == b"over the wire"
    assert env.now > 0.01  # several RPC round trips of simulated time
