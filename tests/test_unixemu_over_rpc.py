"""The UNIX emulation composed entirely out of RPC clients: syscalls on
one host, Bullet and directory servers across the simulated network —
the deployment shape real Amoeba workstations used."""

import pytest

from repro.client import BulletClient, DirectoryClient, LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import NotFoundError
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import run_process
from repro.unixemu import UnixEmulation

from conftest import SMALL_DISK, make_bullet, small_testbed


@pytest.fixture
def remote_unix(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           transport=rpc, max_directories=16)
    dirs.format()
    run_process(env, dirs.boot())
    names = DirectoryClient(env, rpc, default_port=dirs.port)
    root = run_process(env, names.create_directory())
    unix = UnixEmulation(env, BulletClient(env, rpc, bullet.port),
                         names, root)
    return unix, bullet, env


def test_full_session_over_the_network(remote_unix):
    unix, bullet, env = remote_unix

    def session():
        yield from unix.mkdir("/work")
        fd = yield from unix.open("/work/report.txt", "w")
        yield from unix.write(fd, b"written across the wire")
        yield from unix.close(fd)
        fd = yield from unix.open("/work/report.txt", "r")
        data = yield from unix.read(fd, 100)
        yield from unix.close(fd)
        st = yield from unix.stat("/work/report.txt")
        return data, st

    data, st = run_process(env, session())
    assert data == b"written across the wire"
    assert st == {"size": 23, "is_directory": False}
    assert env.now > 0.01  # real network round trips happened


def test_rename_and_unlink_over_the_network(remote_unix):
    unix, _bullet, env = remote_unix

    def session():
        fd = yield from unix.open("/a", "w")
        yield from unix.write(fd, b"contents")
        yield from unix.close(fd)
        yield from unix.rename("/a", "/b")
        fd = yield from unix.open("/b", "r")
        data = yield from unix.read(fd, 10)
        yield from unix.close(fd)
        yield from unix.unlink("/b")
        try:
            yield from unix.open("/b", "r")
        except NotFoundError:
            return data, "gone"

    assert run_process(env, session()) == (b"contents", "gone")


def test_listdir_over_the_network(remote_unix):
    unix, _bullet, env = remote_unix

    def session():
        yield from unix.mkdir("/dir")
        for name in ("x", "y"):
            fd = yield from unix.open(f"/dir/{name}", "w")
            yield from unix.write(fd, b"1")
            yield from unix.close(fd)
        return (yield from unix.listdir("/dir"))

    assert run_process(env, session()) == ["x", "y"]


def test_versioning_behaviour_identical_to_local_plane(remote_unix):
    """Each dirty close creates a new file and deletes the old — same
    semantics as the local-plane tests."""
    unix, bullet, env = remote_unix

    def session():
        fd = yield from unix.open("/doc", "w")
        yield from unix.write(fd, b"v1")
        cap1 = yield from unix.close(fd)
        fd = yield from unix.open("/doc", "w")
        yield from unix.write(fd, b"v2")
        cap2 = yield from unix.close(fd)
        return cap1, cap2

    cap1, cap2 = run_process(env, session())
    assert cap1.object != cap2.object
    with pytest.raises(NotFoundError):
        run_process(env, bullet.read(cap1))
