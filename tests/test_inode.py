"""Tests for inodes, the disk descriptor, and the resident inode table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import INODE_SIZE, DiskDescriptor, Inode, InodeTable
from repro.errors import BadRequestError, ConsistencyError, NoSpaceError


DESC = DiskDescriptor(block_size=512, control_size=8, data_size=1000)


def make_table(count=64):
    return InodeTable(DESC, count)


# ---------------------------------------------------------------- Inode


def test_inode_is_16_bytes():
    assert len(Inode(secret=1, start_block=2, size=3).encode()) == INODE_SIZE


def test_inode_roundtrip():
    inode = Inode(secret=0xABCDEF123456, index=7, start_block=99, size=4096)
    decoded = Inode.decode(inode.encode())
    assert decoded.secret == inode.secret
    assert decoded.start_block == inode.start_block
    assert decoded.size == inode.size
    # The cache index has "no significance on disk": always zero there.
    assert decoded.index == 0


def test_zero_inode_is_free():
    assert Inode().free
    assert not Inode(secret=1).free


def test_inode_decode_rejects_wrong_size():
    with pytest.raises(BadRequestError):
        Inode.decode(bytes(15))


@given(
    secret=st.integers(min_value=0, max_value=(1 << 48) - 1),
    start=st.integers(min_value=0, max_value=(1 << 32) - 1),
    size=st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_inode_roundtrip_property(secret, start, size):
    inode = Inode(secret=secret, start_block=start, size=size)
    decoded = Inode.decode(inode.encode())
    assert (decoded.secret, decoded.start_block, decoded.size) == (secret, start, size)


# ----------------------------------------------------------- descriptor


def test_descriptor_roundtrip():
    assert DiskDescriptor.decode(DESC.encode()) == DESC


def test_descriptor_rejects_bad_magic():
    with pytest.raises(ConsistencyError):
        DiskDescriptor.decode(bytes(16))


# ---------------------------------------------------------- inode table


def test_table_requires_two_entries():
    with pytest.raises(BadRequestError):
        InodeTable(DESC, 1)


def test_allocate_returns_low_numbers_first():
    table = make_table()
    assert table.allocate(secret=1, start_block=10, size=100) == 1
    assert table.allocate(secret=2, start_block=20, size=200) == 2


def test_allocate_rejects_zero_secret():
    table = make_table()
    with pytest.raises(BadRequestError):
        table.allocate(secret=0, start_block=0, size=0)


def test_allocate_exhaustion():
    table = make_table(count=4)
    for i in range(3):
        table.allocate(secret=i + 1, start_block=i, size=1)
    with pytest.raises(NoSpaceError):
        table.allocate(secret=99, start_block=0, size=1)


def test_release_recycles_inode():
    table = make_table(count=4)
    n = table.allocate(secret=5, start_block=1, size=1)
    table.release(n)
    assert table.get(n).free
    # Released number is available again.
    numbers = {table.allocate(secret=k + 1, start_block=0, size=0) for k in range(3)}
    assert n in numbers


def test_release_free_inode_rejected():
    table = make_table()
    with pytest.raises(BadRequestError):
        table.release(3)


def test_get_range_checked():
    table = make_table(count=8)
    with pytest.raises(BadRequestError):
        table.get(0)  # inode 0 is the descriptor
    with pytest.raises(BadRequestError):
        table.get(8)


def test_live_inodes_iteration():
    table = make_table()
    table.allocate(secret=1, start_block=0, size=10)
    table.allocate(secret=2, start_block=5, size=20)
    live = list(table.live_inodes())
    assert [n for n, _ in live] == [1, 2]
    assert table.live_count == 2
    assert table.free_count == 61


def test_block_of_inode():
    table = make_table()
    per_block = 512 // INODE_SIZE
    assert table.block_of_inode(0) == 0
    assert table.block_of_inode(per_block - 1) == 0
    assert table.block_of_inode(per_block) == 1


def test_encode_block_zero_contains_descriptor():
    table = make_table()
    block = table.encode_block(0)
    assert len(block) == 512
    assert DiskDescriptor.decode(block[:INODE_SIZE]) == DESC


def test_table_encode_decode_roundtrip():
    table = make_table()
    n1 = table.allocate(secret=0x111111, start_block=50, size=1000)
    n2 = table.allocate(secret=0x222222, start_block=60, size=2000)
    table.get(n1).index = 5  # volatile, must not survive the disk
    decoded = InodeTable.decode(table.encode(), block_size=512)
    assert decoded.get(n1).secret == 0x111111
    assert decoded.get(n1).index == 0
    assert decoded.get(n2).size == 2000
    assert decoded.live_count == 2
    assert decoded.free_count == table.free_count


def test_decode_rebuilds_free_list():
    table = make_table(count=8)
    for i in range(3):
        table.allocate(secret=i + 1, start_block=i * 10, size=100)
    table.release(2)
    decoded = InodeTable.decode(table.encode(), block_size=512)
    # Inode 2 must be allocatable again, 1 and 3 must not.
    assert decoded.get(2).free
    assert not decoded.get(1).free
    assert decoded.allocate(secret=9, start_block=0, size=0) == 2


def test_decode_rejects_mismatched_block_size():
    table = make_table()
    with pytest.raises(ConsistencyError):
        InodeTable.decode(table.encode(), block_size=1024)


@given(st.lists(st.integers(min_value=1, max_value=62), unique=True, max_size=20))
def test_allocate_release_keeps_counts_consistent(releases):
    """Property: after arbitrary allocate/release interleavings, the free
    count plus live count equals the table capacity."""
    table = make_table()
    allocated = [table.allocate(secret=i + 1, start_block=0, size=0) for i in range(62)]
    for number in releases:
        if number in allocated:
            table.release(number)
    assert table.live_count + table.free_count == 63
