"""Tests for the extent free list, including hypothesis properties on the
coalescing/overlap invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Extent, ExtentFreeList
from repro.errors import BadRequestError, ConsistencyError, NoSpaceError


def test_new_list_is_one_hole():
    fl = ExtentFreeList(100, 1000)
    assert fl.free_units == 1000
    assert fl.hole_count == 1
    assert fl.holes() == [Extent(100, 1000)]


def test_extent_validation():
    with pytest.raises(BadRequestError):
        Extent(0, 0)
    with pytest.raises(BadRequestError):
        Extent(-1, 5)


def test_unknown_strategy_rejected():
    with pytest.raises(BadRequestError):
        ExtentFreeList(0, 10, strategy="worst_fit")


def test_allocate_first_fit_takes_lowest_hole():
    fl = ExtentFreeList(0, 100)
    a = fl.allocate(10)
    b = fl.allocate(10)
    assert (a, b) == (0, 10)


def test_allocate_exact_hole_removes_it():
    fl = ExtentFreeList(0, 10)
    fl.allocate(10)
    assert fl.hole_count == 0
    assert fl.free_units == 0


def test_allocate_zero_rejected():
    fl = ExtentFreeList(0, 10)
    with pytest.raises(BadRequestError):
        fl.allocate(0)


def test_allocate_beyond_capacity():
    fl = ExtentFreeList(0, 10)
    with pytest.raises(NoSpaceError, match="out of space"):
        fl.allocate(11)


def test_fragmentation_failure_distinguished_from_exhaustion():
    """Total free space is sufficient but no hole is large enough."""
    fl = ExtentFreeList(0, 30)
    a = fl.allocate(10)
    b = fl.allocate(10)
    c = fl.allocate(10)
    fl.free(a, 10)
    fl.free(c, 10)
    assert fl.free_units == 20
    with pytest.raises(NoSpaceError, match="fragmented"):
        fl.allocate(15)


def test_free_coalesces_left_and_right():
    fl = ExtentFreeList(0, 30)
    a = fl.allocate(10)
    b = fl.allocate(10)
    c = fl.allocate(10)
    fl.free(a, 10)
    fl.free(c, 10)
    assert fl.hole_count == 2
    fl.free(b, 10)  # merges everything back into one hole
    assert fl.hole_count == 1
    assert fl.holes() == [Extent(0, 30)]


def test_double_free_detected():
    fl = ExtentFreeList(0, 30)
    a = fl.allocate(10)
    fl.free(a, 10)
    with pytest.raises(ConsistencyError, match="double free"):
        fl.free(a, 10)
    with pytest.raises(ConsistencyError, match="double free"):
        fl.free(a + 5, 2)  # partial overlap with a hole


def test_free_outside_area_rejected():
    fl = ExtentFreeList(100, 50)
    with pytest.raises(BadRequestError):
        fl.free(90, 5)
    with pytest.raises(BadRequestError):
        fl.free(140, 20)


def test_allocate_at_claims_specific_extent():
    fl = ExtentFreeList(0, 100)
    fl.allocate_at(40, 20)
    assert fl.free_units == 80
    assert fl.holes() == [Extent(0, 40), Extent(60, 40)]


def test_allocate_at_on_used_extent_rejected():
    fl = ExtentFreeList(0, 100)
    fl.allocate_at(40, 20)
    with pytest.raises(ConsistencyError):
        fl.allocate_at(50, 20)  # overlaps the used region


def test_allocate_at_edge_of_hole():
    fl = ExtentFreeList(0, 100)
    fl.allocate_at(0, 10)   # left edge: no left remainder
    fl.allocate_at(90, 10)  # right edge: no right remainder
    assert fl.holes() == [Extent(10, 80)]


def test_best_fit_prefers_snuggest_hole():
    fl = ExtentFreeList(0, 100, strategy="best_fit")
    # Carve holes of sizes 30 (at 0), 10 (at 50), 25 (at 75) by allocating
    # the complement.
    fl.allocate_at(30, 20)
    fl.allocate_at(60, 15)
    assert [h.length for h in fl.holes()] == [30, 10, 25]
    start = fl.allocate(9)
    assert start == 50  # the 10-unit hole, not the first-fit 30-unit one


def test_first_vs_best_fit_differ():
    ff = ExtentFreeList(0, 100, strategy="first_fit")
    bf = ExtentFreeList(0, 100, strategy="best_fit")
    for fl in (ff, bf):
        fl.allocate_at(30, 20)
        fl.allocate_at(60, 15)
    assert ff.allocate(9) == 0
    assert bf.allocate(9) == 50


def test_is_free():
    fl = ExtentFreeList(0, 100)
    fl.allocate_at(40, 20)
    assert fl.is_free(0, 40)
    assert fl.is_free(60, 40)
    assert not fl.is_free(39, 2)
    assert not fl.is_free(45, 1)
    assert not fl.is_free(0, 0)


def test_fragmentation_metric():
    fl = ExtentFreeList(0, 100)
    assert fl.external_fragmentation() == 0.0
    fl.allocate_at(40, 20)
    # Holes of 40 and 40; largest/free = 40/80.
    assert fl.external_fragmentation() == pytest.approx(0.5)
    full = ExtentFreeList(0, 10)
    full.allocate(10)
    assert full.external_fragmentation() == 0.0


def test_stats_track_usage():
    fl = ExtentFreeList(0, 100)
    fl.allocate(25)
    assert fl.used_units == 25
    assert fl.largest_hole == 75


# ----------------------------------------------------- property testing


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocations and frees."""
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=40)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    ))


@given(script=alloc_free_script())
@settings(max_examples=200)
def test_freelist_invariants_under_random_workload(script):
    """Property: under any allocate/free interleaving, the hole list
    stays sorted, bounded, non-overlapping and coalesced, and the unit
    accounting balances."""
    fl = ExtentFreeList(0, 500)
    allocated: list[tuple[int, int]] = []
    for op, arg in script:
        if op == "alloc":
            try:
                start = fl.allocate(arg)
            except NoSpaceError:
                continue
            allocated.append((start, arg))
        elif allocated:
            start, length = allocated.pop(arg % len(allocated))
            fl.free(start, length)
        fl.check_invariants()
        in_use = sum(length for _, length in allocated)
        assert fl.free_units + in_use == 500
    # No allocated extent may be marked free.
    for start, length in allocated:
        assert not fl.is_free(start, length)


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=20)
)
def test_alloc_all_then_free_all_restores_single_hole(lengths):
    """Property: freeing everything always coalesces back to one hole."""
    fl = ExtentFreeList(0, 1000)
    extents = []
    for length in lengths:
        extents.append((fl.allocate(length), length))
    for start, length in sorted(extents, key=lambda e: (e[0] * 7919) % 101):
        fl.free(start, length)
    assert fl.hole_count == 1
    assert fl.free_units == 1000
    fl.check_invariants()
