"""Cross-cutting integration tests: gateways under packet loss, the
module entry point, mirror raw plane, and status reporting."""

import pytest
from dataclasses import replace

from repro.client import BulletClient
from repro.disk import MirroredDiskSet, VirtualDisk
from repro.net import (
    Ethernet,
    RpcTransport,
    WideAreaProfile,
    connect_sites,
)
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, SeededStream, run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet


def test_gateway_rpc_survives_lossy_local_segments(env):
    """Cross-site RPC where both sites' Ethernets drop packets: the
    retransmission machinery composes with forwarding."""
    lossy = replace(EthernetProfile(), loss_probability=0.15)
    eth_a = Ethernet(env, lossy, stream=SeededStream(1, "a"))
    rpc_a = RpcTransport(env, eth_a, CpuProfile())
    rpc_a.retransmit_interval = 0.05
    eth_b = Ethernet(env, lossy, stream=SeededStream(2, "b"))
    rpc_b = RpcTransport(env, eth_b, CpuProfile())
    rpc_b.retransmit_interval = 0.05
    connect_sites(env, rpc_a, rpc_b)
    bullet = make_bullet(env, transport=rpc_b)
    client = BulletClient(env, rpc_a, bullet.port)

    def scenario():
        caps = []
        for i in range(8):
            caps.append((yield from client.create(bytes([i]) * 500, 1)))
        for i, cap in enumerate(caps):
            assert (yield from client.read(cap)) == bytes([i]) * 500
        return len(caps)

    assert run_process(env, scenario()) == 8
    assert bullet.stats.creates == 8  # at-most-once held across the hop
    assert eth_a.stats.lost_packets + eth_b.stats.lost_packets > 0


def test_main_module_quick_run(capsys):
    """``python -m repro`` produces the tables and claim checks."""
    from repro.__main__ import main

    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Bullet file server — Delay (msec)" in out
    assert "SUN NFS file server — Bandwidth (Kbytes/sec)" in out
    assert "C1 read speedup" in out
    assert "1 Mbyte" in out


def test_mirror_raw_plane(env):
    disks = [VirtualDisk(env, SMALL_DISK, name=f"m{i}") for i in (0, 1)]
    mirror = MirroredDiskSet(env, disks)
    mirror.write_raw(5, b"both replicas")
    assert disks[0].read_raw(5, 1)[:13] == b"both replicas"
    assert disks[1].read_raw(5, 1)[:13] == b"both replicas"
    assert mirror.read_raw(5, 1)[:13] == b"both replicas"
    assert env.now == 0.0  # raw plane is free


def test_status_reports_fragmentation_and_cache(env, bullet):
    caps = [run_process(env, bullet.create(bytes(8 * KB), 1)) for _ in range(4)]
    run_process(env, bullet.delete(caps[1]))
    run_process(env, bullet.read(caps[0]))
    status = bullet.status()
    assert status["files"] == 3
    assert 0.0 <= status["disk_fragmentation"] < 1.0
    assert status["cache_used_bytes"] == 3 * 8 * KB
    assert 0.0 < status["cache_hit_rate"] <= 1.0
    assert status["disk_largest_hole"] > 0


def test_rpc_wire_sizes_scale_with_payload(env):
    from repro.net import RpcReply, RpcRequest
    from repro.capability import Capability

    small = RpcRequest(opcode=1)
    cap = Capability(port=1, object=1, rights=1, check=1)
    with_cap = RpcRequest(opcode=1, cap=cap)
    with_body = RpcRequest(opcode=1, body=bytes(1000))
    assert with_cap.wire_size == small.wire_size + 16
    assert with_body.wire_size == small.wire_size + 1000
    reply = RpcReply(body=bytes(500), caps=(cap, cap))
    assert reply.wire_size > 500 + 32


def test_paper_sizes_match_row_pattern():
    """The figure column follows the OCR's visible pattern: bytes,
    bytes, bytes, Kbytes, Kbytes, Mbyte."""
    from repro.bench import PAPER_SIZES
    from repro.units import fmt_size

    labels = [fmt_size(s) for s in PAPER_SIZES]
    assert labels[0] == "1 byte"
    assert all("bytes" in lab for lab in labels[1:3])
    assert all("Kbytes" in lab for lab in labels[3:5])
    assert labels[5] == "1 Mbyte"
