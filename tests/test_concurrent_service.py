"""The concurrent service plane: online compaction racing READ misses
and CREATEs (the torn-read regression this PR exists for), the worker
pool overlapping requests, throughput scaling with workers, and the
bounded verified-capability cache."""

import pytest

from repro.bench import throughput_vs_workers
from repro.client import BulletClient
from repro.core import BulletServer, VerifiedCapCache, compact_disk
from repro.errors import BadRequestError
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import run_process
from repro.units import KB

from conftest import make_bullet
from test_concurrency import check_bullet_invariants


def fragment(env, bullet, n=12, size=32 * KB):
    """Create n files, delete every other one: many holes, n/2 movable
    survivors. Returns [(cap, payload)] for the survivors."""
    caps = [run_process(env, bullet.create(bytes([0x30 + i]) * size, 1))
            for i in range(n)]
    survivors = []
    for i, cap in enumerate(caps):
        if i % 2 == 0:
            run_process(env, bullet.delete(cap))
        else:
            survivors.append((cap, bytes([0x30 + i]) * size))
    return survivors


def test_online_compaction_with_concurrent_read_misses(env):
    """The torn-read property. A compaction pass runs while readers
    force cache misses on every file it is moving: each read must block
    on the file's write lock and return intact bytes from whichever
    extent the inode points at — never a half-written destination."""
    bullet = make_bullet(env)
    survivors = fragment(env, bullet)
    for cap, _payload in survivors:
        bullet.evict(cap.object)  # every read goes to disk
    torn = []

    def reader(index, cap, payload):
        yield env.timeout(index * 2e-4)
        for _round in range(4):
            data = yield from bullet.read(cap)
            if data != payload:
                torn.append((index, cap.object))
            bullet.evict(cap.object)
            yield env.timeout(1e-3)

    compaction = env.process(compact_disk(bullet))
    for index, (cap, payload) in enumerate(survivors):
        env.process(reader(index, cap, payload))
    env.run()
    assert not torn, f"torn reads during online compaction: {torn}"
    assert compaction.ok
    assert compaction.value.files_moved > 0  # the pass really moved data
    check_bullet_invariants(bullet)


def test_online_compaction_with_concurrent_creates(env):
    """The regression proper: CREATEs race the pass for the very holes
    it is compacting into. The destination claim (allocate-before-copy)
    and the per-file write lock keep the two from ever double-booking
    blocks. The pre-fix pass (inode repointed and free map mutated
    before the data writes landed, no locks) fails this test with the
    exact extent-overlap corruption §3's startup scan exists to catch
    (verified by swapping the old ordering back in)."""
    bullet = make_bullet(env)
    survivors = fragment(env, bullet)
    created = []

    def creator():
        for i in range(6):
            payload = bytes([0x60 + i]) * (24 * KB)
            cap = yield from bullet.create(payload, 2)
            created.append((cap, payload))
            yield env.timeout(2e-3)

    compaction = env.process(compact_disk(bullet))
    env.process(creator())
    env.run()
    assert compaction.ok
    assert len(created) == 6
    check_bullet_invariants(bullet)

    # Reboot purely from disk: the startup scan must find a consistent
    # volume — zero quarantined inodes, every file byte-intact.
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    report = env.run(until=env.process(reborn.boot()))
    assert report.quarantined == []
    for cap, payload in survivors + created:
        assert run_process(env, reborn.read(cap)) == payload
    check_bullet_invariants(reborn)


def test_worker_pool_overlaps_requests(env):
    """With workers=4 a tiny read issued during a 1 MB transfer
    completes *before* it — the inverse of the pinned workers=1
    responsiveness test."""
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc, workers=4)
    client = BulletClient(env, rpc, bullet.port)
    big = run_process(env, client.create(bytes(1024 * KB), 1))
    small = run_process(env, client.create(b"quick", 1))
    finish = {}

    def big_reader():
        yield from client.read(big)
        finish["big"] = env.now

    def small_reader():
        yield env.timeout(1e-4)  # arrive while the big read is in service
        yield from client.read(small)
        finish["small"] = env.now

    env.process(big_reader())
    env.process(small_reader())
    env.run()
    assert finish["small"] < finish["big"]
    assert bullet.status()["workers"] == 4


def test_worker_count_is_validated(env):
    with pytest.raises(BadRequestError):
        make_bullet(env, workers=0)


def test_read_throughput_scales_with_workers():
    """The PR's raison d'être as a measurement: closed-loop cache-hit
    throughput strictly increases 1 -> 2 -> 4 workers."""
    results = throughput_vs_workers(worker_counts=(1, 2, 4), duration=1.0)
    assert results[1] < results[2] < results[4], results


def test_verified_cap_cache_is_bounded_lru():
    cache = VerifiedCapCache(3)

    def key(obj):
        return (obj, 0xFF, 1000 + obj)

    for obj in (1, 2, 3):
        cache.add(key(obj))
    assert cache.hit(key(1))  # refresh: LRU order is now 2, 3, 1
    cache.add(key(4))         # evicts 2, the least recently used
    assert len(cache) == 3
    assert not cache.hit(key(2))
    assert cache.hit(key(3)) and cache.hit(key(1)) and cache.hit(key(4))
    with pytest.raises(BadRequestError):
        VerifiedCapCache(0)


def test_verified_cap_cache_forget_object():
    cache = VerifiedCapCache(8)
    cache.add((5, 1, 10))
    cache.add((5, 2, 11))
    cache.add((6, 1, 12))
    cache.forget_object(5)  # the DELETE path: one object's entries go
    assert len(cache) == 1
    assert not cache.hit((5, 1, 10)) and not cache.hit((5, 2, 11))
    assert cache.hit((6, 1, 12))
    cache.forget_object(99)  # unknown object: no-op
    cache.clear()
    assert len(cache) == 0


def test_server_cap_cache_stays_bounded(env):
    """End to end: a stream of distinct capabilities cannot grow the
    server's verified-cap cache past its configured bound."""
    from conftest import small_testbed

    bullet = make_bullet(env, testbed=small_testbed(cap_cache_entries=4))
    caps = [run_process(env, bullet.create(bytes([i]) * 64, 1))
            for i in range(8)]
    for cap in caps:
        run_process(env, bullet.read(cap))
    assert bullet.status()["verified_caps_cached"] <= 4
