"""Model-based testing of the Bullet server.

Hypothesis drives random CREATE/READ/DELETE/MODIFY sequences against a
real server while :class:`repro.modelcheck.RefModel` — the same oracle
the exhaustive model checker uses — tracks intended state. After every
operation the server's internal invariants must hold; at the end, the
server is rebooted from its disks and must agree with the oracle
exactly (for files written with P-FACTOR >= 1).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BulletServer
from repro.errors import NoSpaceError, NotFoundError, ReproError
from repro.modelcheck import RefModel
from repro.sim import Environment, run_process
from repro.units import KB

from conftest import make_bullet


class Step:
    """One scripted operation (sizes small to keep runs fast)."""

    def __init__(self, kind, size, target, offset, delete_bytes):
        self.kind = kind
        self.size = size
        self.target = target
        self.offset = offset
        self.delete_bytes = delete_bytes

    def __repr__(self):
        return (f"Step({self.kind}, size={self.size}, target={self.target}, "
                f"off={self.offset}, del={self.delete_bytes})")


steps = st.builds(
    Step,
    kind=st.sampled_from(["create", "read", "delete", "modify", "evict"]),
    size=st.integers(min_value=0, max_value=8 * KB),
    target=st.integers(min_value=0, max_value=1 << 16),
    offset=st.integers(min_value=0, max_value=8 * KB),
    delete_bytes=st.integers(min_value=0, max_value=2 * KB),
)


def check_invariants(bullet):
    bullet.disk_free.check_invariants()
    bullet.cache.check_invariants()
    # Accounting: every live inode's extent is allocated, totals match.
    used = 0
    for _number, inode in bullet.table.live_inodes():
        blocks = bullet.layout.blocks_for(inode.size)
        used += blocks
        if blocks:
            assert not bullet.disk_free.is_free(inode.start_block, blocks)
    assert used == bullet.disk_free.used_units
    # Every inode.index points at an rnode for that inode, and vice versa.
    for _number, inode in bullet.table.live_inodes():
        if inode.index:
            rnode = bullet.cache.get_slot(inode.index)
            assert rnode.inode_number == _number


@given(script=st.lists(steps, max_size=40))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bullet_server_matches_reference_model(script):
    env = Environment()
    bullet = make_bullet(env)
    model = RefModel()
    content_counter = 0

    for step in script:
        cap = model.pick(step.target)
        if step.kind == "create":
            content_counter += 1
            payload = (content_counter.to_bytes(4, "big") * (step.size // 4 + 1))[: step.size]
            try:
                new_cap = run_process(env, bullet.create(payload, 2))
            except NoSpaceError:
                continue
            assert new_cap not in model
            model.create(new_cap, payload)
        elif step.kind == "read":
            if cap is None:
                continue
            assert run_process(env, bullet.read(cap)) == model.data(cap)
        elif step.kind == "delete":
            if cap is None:
                continue
            run_process(env, bullet.delete(cap))
            model.delete(cap)
            with pytest.raises((NotFoundError, ReproError)):
                run_process(env, bullet.read(cap))
        elif step.kind == "modify":
            if cap is None:
                continue
            old = model.data(cap)
            offset, delete_bytes = RefModel.clamp_modify(
                len(old), step.offset, step.delete_bytes)
            insert = b"MOD" * 5
            try:
                new_cap = run_process(env, bullet.modify(
                    cap, offset, delete_bytes, insert, 2))
            except NoSpaceError:
                continue
            model.create(new_cap,
                         RefModel.spliced(old, offset, delete_bytes, insert))
            assert model.data(cap) == old  # immutability of the source
        elif step.kind == "evict" and cap is not None:
            bullet.evict(cap.object)
        check_invariants(bullet)

    # ---- Reboot from disk: everything must survive exactly. -------------
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    report = env.run(until=env.process(reborn.boot()))
    assert report.live_files == len(model)
    assert reborn.disk_free.free_units == bullet.disk_free.free_units
    for cap, expected in model.items():
        assert run_process(env, reborn.read(cap)) == expected
    check_invariants(reborn)


crash_steps = st.builds(
    Step,
    kind=st.sampled_from(["create", "read", "delete", "modify", "crash"]),
    size=st.integers(min_value=0, max_value=8 * KB),
    target=st.integers(min_value=0, max_value=1 << 16),
    offset=st.integers(min_value=0, max_value=8 * KB),
    delete_bytes=st.integers(min_value=0, max_value=2 * KB),
)


@given(script=st.lists(crash_steps, max_size=25))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bullet_server_survives_random_crash_restart(script):
    """Crash/restart as a first-class transition: at any point the
    server may lose all volatile state and reboot from its disks. After
    every restart the scan-on-startup invariants must hold and the
    durable contents must match the oracle exactly (all files written
    with P-FACTOR 2, so the reply implied durability on both disks)."""
    env = Environment()
    bullet = make_bullet(env)
    model = RefModel()
    content_counter = 0

    for step in script:
        cap = model.pick(step.target)
        if step.kind == "crash":
            bullet.crash()
            reborn = BulletServer(env, bullet.mirror, bullet.testbed,
                                  name="bullet")
            report = env.run(until=env.process(reborn.boot()))
            # Scan-on-startup invariants after this crash point. Every
            # write here completed with P-FACTOR 2, so the oracle has no
            # uncertain files and the live count must match exactly.
            assert not model.has_uncertain()
            assert report.live_files == len(model)
            assert not report.quarantined
            check_invariants(reborn)
            bullet = reborn
            # RAM cache died with the old incarnation; everything must
            # still be readable straight from disk.
            for c, expected in model.items():
                assert run_process(env, bullet.read(c)) == expected
            continue
        if step.kind == "create":
            content_counter += 1
            payload = (content_counter.to_bytes(4, "big")
                       * (step.size // 4 + 1))[: step.size]
            try:
                new_cap = run_process(env, bullet.create(payload, 2))
            except NoSpaceError:
                continue
            model.create(new_cap, payload)
        elif step.kind == "read":
            if cap is None:
                continue
            assert run_process(env, bullet.read(cap)) == model.data(cap)
        elif step.kind == "delete":
            if cap is None:
                continue
            run_process(env, bullet.delete(cap))
            model.delete(cap)
        elif step.kind == "modify":
            if cap is None:
                continue
            old = model.data(cap)
            offset, delete_bytes = RefModel.clamp_modify(
                len(old), step.offset, step.delete_bytes)
            try:
                new_cap = run_process(env, bullet.modify(
                    cap, offset, delete_bytes, b"CRASHMOD", 2))
            except NoSpaceError:
                continue
            model.create(new_cap, RefModel.spliced(
                old, offset, delete_bytes, b"CRASHMOD"))
        check_invariants(bullet)

    # Final incarnation still agrees with the oracle.
    for cap, expected in model.items():
        assert run_process(env, bullet.read(cap)) == expected
    check_invariants(bullet)
