"""The §5 coherence plane: currency evidence, the fixed
``lookup_validated``, open-by-name sessions, and the currency policies.

The two regression anchors (PR 10's bugfixes):

* a copy cached under a *restricted* capability must compare **current**
  against the directory's owner capability — identity is object plus
  secret lineage, never raw rights bits;
* a copy based on a *non-primary* member of a replicated capability set
  must compare **current** — the check runs against the whole set.

Plus the direction the evidence must never soften: delete+recreate that
reuses an object number is a new incarnation and must compare stale.
"""

import pytest

from repro.capability import (
    ALL_RIGHTS,
    Capability,
    RIGHT_DELETE,
    RIGHT_READ,
    restrict,
)
from repro.client import (
    CachingBulletClient,
    CurrencyPolicy,
    LocalBulletStub,
    NamedFileClient,
    WorkstationCache,
)
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import BadRequestError, NotFoundError
from repro.sim import run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


def make_dir_server(env, bullet=None, name="directory"):
    bullet = bullet or make_bullet(env)
    disk = VirtualDisk(env, SMALL_DISK, name=f"{name}-disk")
    server = DirectoryServer(env, disk, LocalBulletStub(bullet),
                             small_testbed(), name=name,
                             max_directories=32)
    server.format()
    env.run(until=env.process(server.boot()))
    return server, bullet


def call(env, gen):
    return run_process(env, gen)


def advance(env, dt):
    def _sleep():
        yield env.timeout(dt)
    run_process(env, _sleep())


def make_session(env, bullet, dirs, root, policy, name,
                 capacity=256 * KB):
    cache = WorkstationCache(capacity, name=name)
    client = CachingBulletClient(LocalBulletStub(bullet), cache=cache)
    return NamedFileClient(client, dirs, root, policy=policy, name=name)


# ------------------------------------------------- currency evidence unit

SECRET = 0x5EC12E7
OWNER = Capability(port=7, object=42, rights=ALL_RIGHTS, check=SECRET)
READ_CAP = restrict(OWNER, RIGHT_READ)
DEL_CAP = restrict(OWNER, RIGHT_DELETE)


def evidence_cache(cpu=None):
    return WorkstationCache(64 * KB, name="evidence", cpu=cpu)


def test_evidence_object_mismatch_is_free_stale():
    cache = evidence_cache()
    other = Capability(port=7, object=43, rights=ALL_RIGHTS, check=SECRET)
    assert cache.currency_evidence(OWNER, other) == (False, 0.0)


def test_evidence_exact_equality_is_free_current():
    cache = evidence_cache()
    assert cache.currency_evidence(READ_CAP, READ_CAP) == (True, 0.0)
    assert cache.currency_evidence(OWNER, OWNER) == (True, 0.0)


def test_evidence_owner_vs_restricted_without_entry():
    """An owner-shaped side carries the secret in its check field, so
    lineage is provable with one derivation even when nothing is
    cached — in either argument order."""
    cpu = small_testbed().cpu
    cache = evidence_cache(cpu=cpu)
    proven, cost = cache.currency_evidence(READ_CAP, OWNER)
    assert proven
    assert cost == pytest.approx(cpu.capability_check)
    proven, cost = cache.currency_evidence(OWNER, READ_CAP)
    assert proven
    assert cost == pytest.approx(cpu.capability_check)


def test_evidence_two_unequal_owners_are_distinct_incarnations():
    cache = evidence_cache()
    reborn = Capability(port=7, object=42, rights=ALL_RIGHTS,
                        check=SECRET ^ 0xDEAD)
    assert cache.currency_evidence(OWNER, reborn) == (False, 0.0)


def test_evidence_reincarnated_owner_vs_old_restriction_is_stale():
    cache = evidence_cache()
    reborn = Capability(port=7, object=42, rights=ALL_RIGHTS,
                        check=SECRET ^ 0xDEAD)
    proven, _cost = cache.currency_evidence(READ_CAP, reborn)
    assert not proven


def test_evidence_both_restricted_needs_entry_secret():
    """Two restricted capabilities can only be linked through the
    resident entry's evidence; derivations memoize into the verified
    set so the second check is free."""
    cpu = small_testbed().cpu
    cache = evidence_cache(cpu=cpu)
    assert cache.currency_evidence(READ_CAP, DEL_CAP) == (False, 0.0)
    assert cache.admit(OWNER, b"payload")
    proven, cost = cache.currency_evidence(READ_CAP, DEL_CAP)
    assert proven
    assert cost == pytest.approx(2 * cpu.capability_check)
    assert cache.currency_evidence(READ_CAP, DEL_CAP) == (True, 0.0)


def test_evidence_owner_check_seeds_trusted_entry():
    """Proving the owner of an entry that already trusts ``based_on``
    seeds the entry's secret, so the cache can vouch for the owner
    afterwards (client-side restriction becomes local)."""
    cache = evidence_cache()
    assert cache.admit(READ_CAP, b"payload")
    assert not cache.owner_verified(OWNER)
    proven, _cost = cache.currency_evidence(READ_CAP, OWNER)
    assert proven
    assert cache.owner_verified(OWNER)


def test_evidence_dead_entry_gives_no_evidence():
    cache = evidence_cache()
    assert cache.admit(OWNER, b"payload")
    cache.pin(OWNER)
    cache.invalidate(OWNER)
    assert cache.currency_evidence(READ_CAP, DEL_CAP) == (False, 0.0)
    cache.unpin(OWNER)


# ------------------------------------------- lookup_validated regressions


def test_restricted_copy_current_against_owner_binding(env):
    """Regression (fix 1): the directory publishes the owner capability
    while the workstation cached the file under a read-only restriction.
    Raw equality called this stale — a spurious re-fetch on every
    check; evidence-based currency proves the restriction's lineage."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    owner = call(env, bullet.create(b"the published version", 1))
    call(env, dirs.append(root, "doc", owner))
    client = CachingBulletClient(LocalBulletStub(bullet),
                                 cache=WorkstationCache(64 * KB))
    read_only = restrict(owner, RIGHT_READ)
    call(env, client.read(read_only))
    current, cap = call(env, client.lookup_validated(dirs, root, "doc",
                                                     read_only))
    assert current
    assert cap == owner


def test_nonprimary_member_is_current(env):
    """Regression (fix 2): a replicated binding holds one capability
    per replica; a copy based on a non-primary member is current. The
    old check compared only against ``caps[0]``."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    primary = call(env, bullet.create(b"replica bytes", 1))
    secondary = call(env, bullet.create(b"replica bytes", 1))
    call(env, dirs.append(root, "doc", [primary, secondary]))
    client = CachingBulletClient(LocalBulletStub(bullet),
                                 cache=WorkstationCache(64 * KB))
    current, cap = call(env, client.lookup_validated(dirs, root, "doc",
                                                     secondary))
    assert current
    assert cap == secondary
    # ...and a restriction of the non-primary member, combining both
    # fixes: set membership by evidence, not equality against caps[0].
    current, cap = call(env, client.lookup_validated(
        dirs, root, "doc", restrict(secondary, RIGHT_READ)))
    assert current
    assert cap == secondary


def test_reincarnation_is_stale(env):
    """Delete + recreate reuses the object number but mints a new
    secret: the §5 check MUST call the old copy stale even though
    ``(port, object)`` — and here even the bytes — are identical."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    v1 = call(env, bullet.create(b"same bytes", 1))
    call(env, dirs.append(root, "doc", v1))
    client = CachingBulletClient(LocalBulletStub(bullet),
                                 cache=WorkstationCache(64 * KB))
    call(env, client.read(v1))
    call(env, bullet.delete(v1))
    v2 = call(env, bullet.create(b"same bytes", 1))
    assert (v2.port, v2.object) == (v1.port, v1.object)  # slot reused
    assert v2.check != v1.check
    call(env, dirs.replace(root, "doc", v2))
    current, cap = call(env, client.lookup_validated(dirs, root, "doc", v1))
    assert not current
    assert cap == v2
    # The restricted shape of the same staleness.
    current, _cap = call(env, client.lookup_validated(
        dirs, root, "doc", restrict(v1, RIGHT_READ)))
    assert not current


# ----------------------------------------------------- open-by-name plane


def test_stale_binding_invalidates_pinned_entry_via_dead_path(env):
    """A stale binding must invalidate the workstation-cache entry it
    pointed at even while a sibling holds it pinned: the entry goes
    dead (stops serving) and is reclaimed on the last unpin — PR 9's
    dead-entry path, driven from the coherence plane."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    session = make_session(env, bullet, dirs, root,
                           CurrencyPolicy.always(), "ws-pin")
    cache = session.cache
    v1_owner, _old = call(env, session.publish("doc", b"version one"))
    assert call(env, session.read("doc")) == b"version one"
    assert v1_owner in cache
    cache.pin(v1_owner)
    call(env, session.publish("doc", b"version two"))
    assert v1_owner not in cache        # dead: no longer serves hits
    cache.unpin(v1_owner)               # last unpin reclaims the bytes
    assert cache.audit() == 0
    assert call(env, session.read("doc")) == b"version two"
    assert cache.audit() == len(b"version two")


def test_check_always_never_serves_stale(env):
    """The acceptance property: under check-always, a read issued
    after a directory REPLACE commits never returns the old version —
    even when the superseded file is deleted out from under a cached
    capability (recovery is name-mediated)."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    writer = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "writer")
    reader = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.always(), "reader")
    owner, _old = call(env, writer.publish("doc", b"doc v0"))
    assert call(env, reader.read("doc")) == b"doc v0"
    for version in range(1, 5):
        data = f"doc v{version}".encode()
        mask = RIGHT_READ if version % 2 else None
        new_owner, _old = call(env, writer.publish("doc", data, mask=mask))
        call(env, writer.client.delete(owner))  # dispose old version
        owner = new_owner
        assert call(env, reader.read("doc")) == data
    assert reader.stats.stale == 4
    assert reader.stats.revalidations == 4


def test_session_policy_serves_cached_version_without_traffic(env):
    """The other end of the trade-off: a session binding never
    re-checks, so it serves the bound version from the cache with zero
    further directory RPCs — and therefore serves stale data."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    writer = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "writer")
    reader = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "reader")
    call(env, writer.publish("doc", b"doc v0"))
    assert call(env, reader.read("doc")) == b"doc v0"
    rpcs_after_bind = reader.stats.dir_rpcs
    call(env, writer.publish("doc", b"doc v1"))
    assert call(env, reader.read("doc")) == b"doc v0"   # stale, by design
    assert reader.stats.dir_rpcs == rpcs_after_bind     # and free
    assert reader.stats.checks == 0


def test_after_policy_checks_once_interval_elapses(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    writer = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "writer")
    reader = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.after(10.0), "reader")
    call(env, writer.publish("doc", b"doc v0"))
    assert call(env, reader.read("doc")) == b"doc v0"
    call(env, writer.publish("doc", b"doc v1"))
    assert call(env, reader.read("doc")) == b"doc v0"   # within T: no check
    assert reader.stats.checks == 0
    advance(env, 10.0)
    assert call(env, reader.read("doc")) == b"doc v1"   # T elapsed: check
    assert reader.stats.checks == 1
    assert reader.stats.stale == 1


def test_vanished_file_forces_recovery_under_session_policy(env):
    """Even a never-rechecking session recovers when the file its
    binding names is disposed of: the failed fetch forces a currency
    check and the read lands on the current version."""
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    writer = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "writer")
    # A 16-byte cache cannot hold the file: every read goes to the
    # server, so the disposal is actually observed.
    reader = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "reader", capacity=16)
    v1, _old = call(env, writer.publish("doc", b"doc v0 " + b"x" * 64))
    assert call(env, reader.read("doc")).startswith(b"doc v0")
    call(env, writer.publish("doc", b"doc v1 " + b"x" * 64))
    call(env, writer.client.delete(v1))
    assert call(env, reader.read("doc")).startswith(b"doc v1")
    assert reader.stats.stale == 1
    assert reader.stats.revalidations == 1


def test_coherence_counters_scripted(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    writer = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.session(), "writer")
    reader = make_session(env, bullet, dirs, root,
                          CurrencyPolicy.always(), "reader")
    call(env, writer.publish("doc", b"doc v0"))
    call(env, reader.read("doc"))                   # bind
    call(env, reader.read("doc"))                   # check: current
    call(env, writer.publish("doc", b"doc v1"))
    call(env, reader.read("doc"))                   # check: stale, refetch
    assert reader.stats.opens == 3
    assert reader.stats.binds == 1
    assert reader.stats.checks == 2
    assert reader.stats.stale == 1
    assert reader.stats.revalidations == 1
    # One RPC per bind or check: the directory is the only coherence
    # traffic, and the file server saw none of it.
    assert reader.stats.dir_rpcs == 3


def test_open_handle_and_forget(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    session = make_session(env, bullet, dirs, root,
                           CurrencyPolicy.always(), "ws")
    call(env, session.publish("doc", b"handle bytes"))
    handle = call(env, session.open("doc"))
    assert handle.name == "doc"
    assert call(env, handle.read()) == b"handle bytes"
    assert call(env, handle.size()) == len(b"handle bytes")
    session.forget("doc")
    binds = session.stats.binds
    call(env, session.read("doc"))
    assert session.stats.binds == binds + 1


def test_missing_name_raises(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    session = make_session(env, bullet, dirs, root,
                           CurrencyPolicy.always(), "ws")
    with pytest.raises(NotFoundError):
        call(env, session.read("nope"))


# ------------------------------------------------------ policy validation


def test_policy_due_predicates():
    assert CurrencyPolicy.always().due(0.0, 0.0)
    assert not CurrencyPolicy.session().due(1e9, 0.0)
    after = CurrencyPolicy.after(5.0)
    assert not after.due(10.0, 6.0)
    assert after.due(11.0, 6.0)


def test_policy_validation():
    with pytest.raises(BadRequestError):
        CurrencyPolicy.after(0.0)
    with pytest.raises(BadRequestError):
        CurrencyPolicy("sometimes")


# ----------------------------------------------------------- bench smoke


def test_coherence_bench_smoke():
    from repro.bench import coherence_vs_workstations, make_policy

    with pytest.raises(BadRequestError):
        make_policy("hourly", 1.0)
    sweep = coherence_vs_workstations(workstation_counts=(1, 2),
                                      ops_per_workstation=20,
                                      n_replaces=3)
    one, two = sweep[1], sweep[2]
    assert one["stale_reads_served"] == 0
    assert two["stale_reads_served"] == 0
    assert two["dir_rpcs"] > one["dir_rpcs"]
    assert one["dir_rpcs_per_op"] == pytest.approx(1.0)
    assert two["server_reads_per_workstation"] <= 2 * (12 + 3)
