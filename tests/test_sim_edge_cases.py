"""Additional edge-case coverage for the simulation kernel: condition
failure semantics, interrupt corner cases, and event ordering under
composition."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    CountOf,
    Environment,
    Event,
    Interrupt,
    run_process,
)


def test_all_of_fails_on_first_failure():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise ValueError("subtask died")

    def proc():
        events = [env.timeout(5.0), env.process(failer())]
        try:
            yield AllOf(env, events)
        except ValueError as exc:
            return (env.now, str(exc))

    assert run_process(env, proc()) == (1.0, "subtask died")


def test_any_of_fails_only_when_all_fail():
    env = Environment()

    def failer(delay):
        yield env.timeout(delay)
        raise ValueError(f"failed at {delay}")

    def proc():
        events = [env.process(failer(1.0)), env.process(failer(2.0))]
        try:
            yield AnyOf(env, events)
        except ValueError as exc:
            return (env.now, str(exc))

    now, message = run_process(env, proc())
    assert now == 2.0
    assert message == "failed at 1.0"  # first failure is reported


def test_any_of_succeeds_despite_one_failure():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise ValueError("one bad")

    def proc():
        events = [env.process(failer()), env.timeout(2.0, value="good")]
        values = yield AnyOf(env, events)
        return (env.now, values)

    assert run_process(env, proc()) == (2.0, ["good"])


def test_all_of_empty_list_succeeds_immediately():
    env = Environment()

    def proc():
        values = yield AllOf(env, [])
        return (env.now, values)

    assert run_process(env, proc()) == (0.0, [])


def test_condition_over_already_processed_events():
    env = Environment()
    early = env.timeout(0.5, value="early")
    env.run(until=1.0)
    assert early.processed

    def proc():
        values = yield AllOf(env, [early, env.timeout(1.0, value="late")])
        return (env.now, sorted(values))

    assert run_process(env, proc()) == (2.0, ["early", "late"])


def test_count_of_values_in_event_order():
    env = Environment()

    def proc():
        events = [env.timeout(3.0, "a"), env.timeout(1.0, "b"),
                  env.timeout(2.0, "c")]
        values = yield CountOf(env, events, need=2)
        return values

    # b (t=1) and c (t=2) fired; values keep *event list* order.
    assert run_process(env, proc()) == ["b", "c"]


def test_interrupt_during_condition_wait():
    env = Environment()

    def victim():
        try:
            yield AllOf(env, [env.timeout(10.0), env.timeout(20.0)])
        except Interrupt:
            return env.now

    def attacker(target):
        yield env.timeout(1.0)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(until=v) == 1.0


def test_double_interrupt_both_delivered():
    env = Environment()
    hits = []

    def victim():
        for _ in range(2):
            try:
                yield env.timeout(10.0)
            except Interrupt as intr:
                hits.append((env.now, intr.cause))
        yield env.timeout(0.5)
        return len(hits)

    def attacker(target):
        yield env.timeout(1.0)
        target.interrupt("first")
        yield env.timeout(1.0)
        target.interrupt("second")

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(until=v) == 2
    assert hits == [(1.0, "first"), (2.0, "second")]


def test_process_failure_propagates_through_nesting():
    env = Environment()

    def inner():
        yield env.timeout(1.0)
        raise KeyError("deep failure")

    def middle():
        return (yield env.process(inner()))

    def outer():
        try:
            yield env.process(middle())
        except KeyError as exc:
            return f"caught {exc}"

    assert run_process(env, outer()) == "caught 'deep failure'"


def test_simultaneous_events_preserve_creation_order():
    env = Environment()
    order = []

    def waiter(tag, event):
        yield event
        order.append(tag)

    events = [env.timeout(1.0) for _ in range(5)]
    for tag, event in enumerate(events):
        env.process(waiter(tag, event))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_value_before_trigger_rejected():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.event().value


def test_timeout_value_carried():
    env = Environment()

    def proc():
        value = yield env.timeout(0.5, value={"key": 42})
        return value

    assert run_process(env, proc()) == {"key": 42}


def test_zero_delay_timeout_runs_after_current_turn():
    env = Environment()
    order = []

    def first():
        order.append("first-start")
        yield env.timeout(0.0)
        order.append("first-resumed")

    def second():
        order.append("second-start")
        yield env.timeout(0.0)
        order.append("second-resumed")

    env.process(first())
    env.process(second())
    env.run()
    assert order == ["first-start", "second-start",
                     "first-resumed", "second-resumed"]
