"""Tests for cross-server replication: capability sets in the
directory, the replicate helper, and replica-set reads with failover."""

import pytest

from repro.client import (
    BulletClient,
    DirectoryClient,
    LocalBulletStub,
    ReplicaSetClient,
    replicate_file,
)
from repro.directory import DirectoryRows, DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import BadRequestError, CapabilityError, ServerDownError
from repro.capability import Capability, ALL_RIGHTS
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, run_process

from conftest import SMALL_DISK, make_bullet, small_testbed


@pytest.fixture
def twin_world(env):
    """Two Bullet servers + one directory server on one network."""
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet_a = make_bullet(env, transport=rpc, name="bullet-a")
    bullet_b = make_bullet(env, transport=rpc, name="bullet-b")
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet_a), small_testbed(),
                           transport=rpc, max_directories=8)
    dirs.format()
    run_process(env, dirs.boot())
    return rpc, bullet_a, bullet_b, dirs


# ------------------------------------------------------- rows with sets


def test_rows_encode_capability_sets():
    cap1 = Capability(port=1, object=1, rights=0xFF, check=1)
    cap2 = Capability(port=2, object=9, rights=0xFF, check=2)
    rows = DirectoryRows(rows={"single": cap1, "replicated": (cap1, cap2)})
    decoded = DirectoryRows.decode(rows.encode())
    assert decoded.rows["single"] == (cap1,)
    assert decoded.rows["replicated"] == (cap1, cap2)


def test_rows_reject_empty_set():
    with pytest.raises(BadRequestError):
        DirectoryRows(rows={"bad": ()})


def test_rows_reject_non_capability():
    with pytest.raises(BadRequestError):
        DirectoryRows(rows={"bad": ("not a cap",)})


# ------------------------------------------------------------ replicate


def test_replicate_file_copies_bytes(env, twin_world):
    _rpc, bullet_a, bullet_b, _dirs = twin_world
    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    original = run_process(env, stub_a.create(b"replicate me", 1))
    copy = run_process(env, replicate_file(stub_a, stub_b, original, 1))
    assert copy.port == bullet_b.port
    assert run_process(env, stub_b.read(copy)) == b"replicate me"
    # The copy is independent: deleting the original leaves it intact.
    run_process(env, stub_a.delete(original))
    assert run_process(env, stub_b.read(copy)) == b"replicate me"


def test_directory_binds_and_returns_sets(env, twin_world):
    rpc, bullet_a, bullet_b, dirs = twin_world
    names = DirectoryClient(env, rpc, default_port=dirs.port)
    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    root = run_process(env, names.create_directory())
    primary = run_process(env, stub_a.create(b"data", 1))
    replica = run_process(env, replicate_file(stub_a, stub_b, primary, 1))
    run_process(env, names.append(root, "file", (primary, replica)))

    assert run_process(env, names.lookup(root, "file")) == primary
    cap_set = run_process(env, names.lookup_set(root, "file"))
    assert cap_set == [primary, replica]


def test_replica_set_read_prefers_primary(env, twin_world):
    rpc, bullet_a, bullet_b, _dirs = twin_world
    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    primary = run_process(env, stub_a.create(b"payload", 1))
    replica = run_process(env, replicate_file(stub_a, stub_b, primary, 1))
    reader = ReplicaSetClient(env, rpc, timeout=0.5)
    reads_b_before = bullet_b.stats.reads
    assert run_process(env, reader.read([primary, replica])) == b"payload"
    assert reader.failovers == 0
    assert bullet_b.stats.reads == reads_b_before  # replica untouched


def test_replica_set_failover_when_primary_server_dies(env, twin_world):
    rpc, bullet_a, bullet_b, _dirs = twin_world
    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    primary = run_process(env, stub_a.create(b"survives", 1))
    replica = run_process(env, replicate_file(stub_a, stub_b, primary, 1))
    bullet_a.crash()
    reader = ReplicaSetClient(env, rpc, timeout=0.5)
    assert run_process(env, reader.read([primary, replica])) == b"survives"
    assert reader.failovers == 1
    assert run_process(env, reader.size([primary, replica])) == 8


def test_replica_set_all_down(env, twin_world):
    rpc, bullet_a, bullet_b, _dirs = twin_world
    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    primary = run_process(env, stub_a.create(b"x", 1))
    replica = run_process(env, replicate_file(stub_a, stub_b, primary, 1))
    bullet_a.crash()
    bullet_b.crash()
    reader = ReplicaSetClient(env, rpc, timeout=0.2)
    with pytest.raises(ServerDownError):
        run_process(env, reader.read([primary, replica]))


def test_replica_set_genuine_error_not_retried(env, twin_world):
    """A forged capability fails identically everywhere: raise at the
    first replica rather than hammering the rest."""
    rpc, bullet_a, _bullet_b, _dirs = twin_world
    stub_a = LocalBulletStub(bullet_a)
    cap = run_process(env, stub_a.create(b"x", 1))
    forged = Capability(port=cap.port, object=cap.object,
                        rights=ALL_RIGHTS, check=cap.check ^ 1)
    reader = ReplicaSetClient(env, rpc, timeout=0.5)
    with pytest.raises(CapabilityError):
        run_process(env, reader.read([forged]))


def test_replica_set_empty_rejected(env, twin_world):
    rpc, *_ = twin_world
    reader = ReplicaSetClient(env, rpc)
    with pytest.raises(ServerDownError):
        run_process(env, reader.read([]))


def test_delete_all_skips_dead_servers(env, twin_world):
    rpc, bullet_a, bullet_b, _dirs = twin_world
    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    primary = run_process(env, stub_a.create(b"x", 1))
    replica = run_process(env, replicate_file(stub_a, stub_b, primary, 1))
    bullet_b.crash()
    reader = ReplicaSetClient(env, rpc, timeout=0.2)
    assert run_process(env, reader.delete_all([primary, replica])) == 1
    assert bullet_a.table.live_count == 0


def test_gc_touches_every_set_member(env, twin_world):
    """reachable_caps must include all replicas, so GC on either server
    keeps its member alive."""
    rpc, bullet_a, bullet_b, dirs = twin_world
    from repro.gc import gc_sweep

    stub_a, stub_b = LocalBulletStub(bullet_a), LocalBulletStub(bullet_b)
    root = run_process(env, dirs.create_directory())
    primary = run_process(env, stub_a.create(b"kept", 1))
    replica = run_process(env, replicate_file(stub_a, stub_b, primary, 1))
    run_process(env, dirs.append(root, "f", (primary, replica)))
    for _ in range(bullet_b.testbed.bullet.max_lives + 1):
        run_process(env, gc_sweep(bullet_b, [dirs]))
    # The replica on server B survived B's aging because the directory
    # entry reaches it.
    assert run_process(env, stub_b.read(replica)) == b"kept"
