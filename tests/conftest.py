"""Shared fixtures: a small, fast testbed for unit/integration tests.

The benchmark harness uses the full paper-scale testbed; tests use a
scaled-down one (32 MB disks, 2 MB cache) so volume formatting and
scans stay fast while exercising identical code paths.
"""

import os

import pytest

from repro.disk import MirroredDiskSet, VirtualDisk
from repro.profiles import BulletProfile, DiskProfile, Testbed
from repro.core import BulletServer
from repro.sim import Environment
from repro.units import MB


SMALL_DISK = DiskProfile(
    name="small-test-disk",
    capacity_bytes=32 * MB,
    cylinders=128,
    heads=4,
    sectors_per_track=32,
)

SMALL_BULLET = BulletProfile(
    ram_bytes=3 * MB,
    reserved_ram_bytes=1 * MB,
    inode_count=256,
    rnode_count=128,
    default_p_factor=2,
)


def small_testbed(disk: DiskProfile = None, **bullet_overrides) -> Testbed:
    """A Testbed scaled for fast tests."""
    bullet = SMALL_BULLET
    if bullet_overrides:
        from dataclasses import replace
        bullet = replace(bullet, **bullet_overrides)
    return Testbed(disk=disk or SMALL_DISK, bullet=bullet)


def pytest_addoption(parser):
    parser.addoption(
        "--explore", action="store_true", default=False,
        help="run tests marked 'explore' (budgeted deep model-checking "
             "scopes, minutes not seconds); REPRO_EXPLORE=1 does the same")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--explore") or os.environ.get("REPRO_EXPLORE") == "1":
        return
    skip = pytest.mark.skip(
        reason="deep exploration scope: pass --explore (or REPRO_EXPLORE=1)")
    for item in items:
        if "explore" in item.keywords:
            item.add_marker(skip)


#: CI's concurrency job sets REPRO_TEST_WORKERS=4 to re-run the whole
#: tier-1 suite against a worker pool; tests that specifically assert
#: single-threaded semantics pass workers=1 explicitly.
DEFAULT_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "1"))


def make_bullet(env: Environment, n_disks: int = 2, testbed: Testbed = None,
                transport=None, **server_kwargs) -> BulletServer:
    """A formatted, booted Bullet server on fresh small disks."""
    testbed = testbed or small_testbed()
    server_kwargs.setdefault("workers", DEFAULT_WORKERS)
    disks = [
        VirtualDisk(env, testbed.disk, name=f"bd{i}") for i in range(n_disks)
    ]
    mirror = MirroredDiskSet(env, disks)
    server = BulletServer(env, mirror, testbed, transport=transport,
                          **server_kwargs)
    server.format()
    env.run(until=env.process(server.boot()))
    return server


@pytest.fixture(autouse=True)
def _runtime_lockset():
    """Run every test under the Eraser-style lockset checker when
    ``REPRO_LOCKSET=1`` (CI's workers=4 job exports it). A lockset
    violation raises RaceReport inside the offending process, so a racy
    access fails the test that provoked it. Off by default: the hooks
    cost one ``is None`` test each, and benchmark artifacts stay
    byte-identical."""
    if os.environ.get("REPRO_LOCKSET") != "1":
        yield
        return
    from repro.analysis.runtime import LocksetChecker, activate, deactivate

    activate(LocksetChecker())
    try:
        yield
    finally:
        deactivate()


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def bullet(env):
    return make_bullet(env)
