"""Tests for the Ethernet model and the RPC layer."""

import pytest

from repro.errors import NotFoundError, RpcTimeoutError, ServerDownError, Status
from repro.net import Ethernet, RpcReply, RpcRequest, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, SeededStream, run_process
from repro.units import KB, MB


PROFILE = EthernetProfile()
CPU = CpuProfile()


def make_net(env, background=False, seed=7):
    stream = SeededStream(seed, "ethernet") if background else None
    eth = Ethernet(env, PROFILE, stream=stream, background_load=background)
    rpc = RpcTransport(env, eth, CPU)
    return eth, rpc


# ------------------------------------------------------------- ethernet


def test_packets_for_small_message():
    env = Environment()
    eth, _ = make_net(env)
    assert eth.packets_for(0) == 1
    assert eth.packets_for(1) == 1
    assert eth.packets_for(PROFILE.max_payload) == 1
    assert eth.packets_for(PROFILE.max_payload + 1) == 2


def test_packets_for_negative_rejected():
    env = Environment()
    eth, _ = make_net(env)
    with pytest.raises(ValueError):
        eth.packets_for(-1)


def test_send_message_takes_expected_time():
    env = Environment()
    eth, _ = make_net(env)

    def proc():
        yield env.process(eth.send_message(10 * KB))
        return env.now

    elapsed = run_process(env, proc())
    assert elapsed == pytest.approx(eth.message_cost_lower_bound(10 * KB))


def test_bulk_throughput_near_calibration_target():
    """1 MB over the uncontended segment must land near the ~700 KB/s
    the Amoeba papers report (calibration window 600-900 KB/s before
    server-side costs)."""
    env = Environment()
    eth, _ = make_net(env)

    def proc():
        yield env.process(eth.send_message(1 * MB))
        return env.now

    elapsed = run_process(env, proc())
    kb_per_sec = (1 * MB / KB) / elapsed
    assert 600 < kb_per_sec < 900


def test_medium_is_shared():
    """Two simultaneous senders serialize on the wire: the last finisher
    pays both messages' wire occupancy (host overheads may overlap)."""
    env = Environment()
    eth, _ = make_net(env)
    finish = []

    def sender():
        yield env.process(eth.send_message(100 * KB))
        finish.append(env.now)

    env.process(sender())
    env.process(sender())
    env.run()
    packets = eth.packets_for(100 * KB)
    solo = eth.message_cost_lower_bound(100 * KB)
    one_wire = solo - packets * PROFILE.per_packet_overhead
    assert finish[-1] >= 2 * one_wire
    assert finish[-1] > 1.3 * solo


def test_background_load_slows_foreground():
    def timed(background):
        env = Environment()
        eth, _ = make_net(env, background=background)

        def proc():
            yield env.process(eth.send_message(1 * MB))
            return env.now

        return run_process(env, proc())

    assert timed(True) > timed(False)


def test_background_load_is_deterministic():
    def run_once():
        env = Environment()
        eth, _ = make_net(env, background=True, seed=42)

        def proc():
            yield env.process(eth.send_message(256 * KB))
            return env.now

        return run_process(env, proc())

    assert run_once() == run_once()


def test_background_requires_stream():
    env = Environment()
    with pytest.raises(ValueError):
        Ethernet(env, PROFILE, background_load=True)


def test_stats_count_packets():
    env = Environment()
    eth, _ = make_net(env)

    def proc():
        yield env.process(eth.send_message(3 * PROFILE.max_payload))

    run_process(env, proc())
    assert eth.stats.packets == 3
    assert eth.stats.payload_bytes == 3 * PROFILE.max_payload


# ------------------------------------------------------------------ rpc


OP_ECHO = 1
OP_FAIL = 2


def echo_server(env, rpc, port):
    """A server echoing request bodies; OP_FAIL raises NotFoundError."""
    endpoint = rpc.register(port)

    def loop():
        while True:
            req = yield endpoint.getreq()
            if req.opcode == OP_FAIL:
                reply = RpcTransport.reply_for_error(NotFoundError("no such object"))
            else:
                reply = RpcReply(args=req.args, body=req.body)
            yield env.process(endpoint.putrep(req, reply))

    env.process(loop())
    return endpoint


def test_trans_roundtrip():
    env = Environment()
    _, rpc = make_net(env)
    echo_server(env, rpc, port=100)

    def client():
        reply = yield env.process(
            rpc.trans(100, RpcRequest(opcode=OP_ECHO, args=(1, 2), body=b"ping"))
        )
        return reply

    reply = run_process(env, client())
    assert reply.ok
    assert reply.args == (1, 2)
    assert reply.body == b"ping"
    assert env.now > 0  # the exchange took simulated time


def test_null_rpc_latency_near_calibration_target():
    """A null RPC should land near Amoeba's measured ~1.4 ms."""
    env = Environment()
    _, rpc = make_net(env)
    echo_server(env, rpc, port=100)

    def client():
        yield env.process(rpc.trans(100, RpcRequest(opcode=OP_ECHO)))
        return env.now

    elapsed = run_process(env, client())
    assert 0.8e-3 < elapsed < 2.0e-3


def test_error_marshalling():
    env = Environment()
    _, rpc = make_net(env)
    echo_server(env, rpc, port=100)

    def client():
        reply = yield env.process(rpc.trans(100, RpcRequest(opcode=OP_FAIL)))
        return reply

    reply = run_process(env, client())
    assert reply.status == Status.NOT_FOUND
    assert "no such object" in reply.message


def test_call_raises_marshalled_error():
    env = Environment()
    _, rpc = make_net(env)
    echo_server(env, rpc, port=100)

    def client():
        try:
            yield env.process(rpc.call(100, RpcRequest(opcode=OP_FAIL)))
        except NotFoundError as exc:
            return ("raised", str(exc))
        return "no error"

    assert run_process(env, client()) == ("raised", "no such object")


def test_trans_to_unknown_port_raises_server_down():
    env = Environment()
    _, rpc = make_net(env)

    def client():
        try:
            yield env.process(rpc.trans(999, RpcRequest(opcode=1), timeout=0.5))
        except ServerDownError:
            return env.now

    assert run_process(env, client()) == pytest.approx(0.5)


def test_trans_timeout_on_silent_server():
    env = Environment()
    _, rpc = make_net(env)
    rpc.register(100)  # registered but nobody serves the inbox

    def client():
        try:
            yield env.process(rpc.trans(100, RpcRequest(opcode=1), timeout=0.25))
        except RpcTimeoutError:
            return "timed out"

    assert run_process(env, client()) == "timed out"


def test_crash_fails_pending_requests():
    env = Environment()
    _, rpc = make_net(env)
    endpoint = rpc.register(100)

    def crasher():
        yield env.timeout(0.01)
        endpoint.crash()

    def client():
        try:
            yield env.process(rpc.trans(100, RpcRequest(opcode=1)))
        except ServerDownError:
            return "down"

    env.process(crasher())
    assert run_process(env, client()) == "down"


def test_crashed_port_can_be_reregistered():
    env = Environment()
    _, rpc = make_net(env)
    endpoint = rpc.register(100)
    endpoint.crash()
    rpc.register(100)  # must not raise


def test_double_register_rejected():
    env = Environment()
    _, rpc = make_net(env)
    rpc.register(100)
    with pytest.raises(ValueError):
        rpc.register(100)


def test_large_reply_dominates_latency():
    """Reading 64 KB must take much longer than a null RPC and scale
    with the body size."""
    env = Environment()
    _, rpc = make_net(env)
    port = 100
    endpoint = rpc.register(port)

    def server():
        while True:
            req = yield endpoint.getreq()
            size = req.args[0]
            yield env.process(endpoint.putrep(req, RpcReply(body=bytes(size))))

    env.process(server())

    def timed(size):
        env_local = env  # same env, sequential calls

        def client():
            t0 = env_local.now
            yield env_local.process(
                rpc.trans(port, RpcRequest(opcode=1, args=(size,)))
            )
            return env_local.now - t0

        return run_process(env_local, client())

    t_small = timed(1)
    t_large = timed(64 * KB)
    assert t_large > 10 * t_small


def test_requests_served_in_order():
    env = Environment()
    _, rpc = make_net(env)
    endpoint = rpc.register(100)
    served = []

    def server():
        while True:
            req = yield endpoint.getreq()
            served.append(req.args[0])
            yield env.process(endpoint.putrep(req, RpcReply()))

    env.process(server())

    def client(tag, delay):
        yield env.timeout(delay)
        yield env.process(rpc.trans(100, RpcRequest(opcode=1, args=(tag,))))

    for i in range(3):
        env.process(client(i, i * 1e-4))
    env.run()
    assert served == [0, 1, 2]


def test_background_traffic_alone_respects_run_deadline():
    # Regression: with background load as the *only* activity, the heap
    # is empty when the daemon plans its next packet train. The batched
    # fast path must treat the run(until=...) deadline as its collapse
    # horizon — it used to scan an unbounded window and hang — and the
    # counters at the deadline must match the reference kernel exactly.
    def totals(fast):
        env = Environment(fast=fast)
        eth, _ = make_net(env, background=True)
        env.run(until=0.25)
        env.run(until=0.6)  # resuming past a stop must stay seamless
        return (env.now, eth.stats.background_packets, eth.stats.wire_time)

    assert totals(True) == totals(False)
