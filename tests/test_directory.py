"""Tests for the directory server: naming, protection, path walking,
version chains, and crash recovery."""

import pytest

from repro.capability import (
    Capability,
    NULL_CAPABILITY,
    RIGHT_CREATE,
    RIGHT_DELETE,
    RIGHT_READ,
    restrict,
)
from repro.client import LocalBulletStub
from repro.directory import DirectoryRows, DirectoryServer, SlotRecord
from repro.disk import VirtualDisk
from repro.errors import (
    BadRequestError,
    ExistsError,
    NotADirectoryError_,
    NotEmptyError,
    NotFoundError,
    RightsError,
)
from repro.sim import Environment, run_process

from conftest import SMALL_DISK, make_bullet, small_testbed


def make_dir_server(env, bullet=None, name="directory", max_dirs=32):
    bullet = bullet or make_bullet(env)
    disk = VirtualDisk(env, SMALL_DISK, name=f"{name}-disk")
    server = DirectoryServer(env, disk, LocalBulletStub(bullet),
                             small_testbed(), name=name,
                             max_directories=max_dirs)
    server.format()
    env.run(until=env.process(server.boot()))
    return server, bullet


def call(env, gen):
    return run_process(env, gen)


# --------------------------------------------------------------- records


def test_rows_roundtrip():
    cap = Capability(port=1, object=2, rights=3, check=4)
    rows = DirectoryRows(seq=7, prev_version=NULL_CAPABILITY,
                         rows={"hello": cap, "world": cap})
    decoded = DirectoryRows.decode(rows.encode())
    assert decoded.seq == 7
    assert decoded.rows == rows.rows


def test_rows_unicode_names():
    cap = Capability(port=1, object=2, rights=3, check=4)
    rows = DirectoryRows(rows={"日本語ファイル": cap})
    assert DirectoryRows.decode(rows.encode()).rows == rows.rows


def test_rows_reject_garbage():
    from repro.errors import ConsistencyError
    with pytest.raises(ConsistencyError):
        DirectoryRows.decode(b"garbage data that is long enough to parse")


def test_slot_record_roundtrip():
    cap = Capability(port=9, object=8, rights=7, check=6)
    record = SlotRecord(in_use=True, secret=0xABC, seq=3, version_cap=cap)
    decoded = SlotRecord.decode(record.encode())
    assert decoded == record


def test_zero_slot_decodes_as_free():
    assert not SlotRecord.decode(bytes(32)).in_use


# -------------------------------------------------------------- lifecycle


def test_create_and_lookup(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    file_cap = call(env, bullet.create(b"contents", p_factor=1))
    call(env, dirs.append(root, "readme", file_cap))
    assert call(env, dirs.lookup(root, "readme")) == file_cap


def test_lookup_missing_entry(env):
    dirs, _ = make_dir_server(env)
    root = call(env, dirs.create_directory())
    with pytest.raises(NotFoundError):
        call(env, dirs.lookup(root, "ghost"))


def test_append_duplicate_rejected(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    call(env, dirs.append(root, "name", cap))
    with pytest.raises(ExistsError):
        call(env, dirs.append(root, "name", cap))


def test_invalid_names_rejected(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    with pytest.raises(BadRequestError):
        call(env, dirs.append(root, "", cap))
    with pytest.raises(BadRequestError):
        call(env, dirs.append(root, "a/b", cap))


def test_list_names_sorted(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    for name in ("zebra", "apple", "mango"):
        call(env, dirs.append(root, name, cap))
    assert call(env, dirs.list_names(root)) == ["apple", "mango", "zebra"]


def test_replace_swaps_and_returns_old(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    v1 = call(env, bullet.create(b"version 1", p_factor=1))
    v2 = call(env, bullet.create(b"version 2", p_factor=1))
    call(env, dirs.append(root, "doc", v1))
    old = call(env, dirs.replace(root, "doc", v2))
    assert old == v1
    assert call(env, dirs.lookup(root, "doc")) == v2


def test_replace_missing_entry(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    with pytest.raises(NotFoundError):
        call(env, dirs.replace(root, "nope", cap))


def test_remove_entry(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    call(env, dirs.append(root, "temp", cap))
    removed = call(env, dirs.remove_entry(root, "temp"))
    assert removed == cap
    with pytest.raises(NotFoundError):
        call(env, dirs.lookup(root, "temp"))


def test_delete_directory_requires_empty(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    sub = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    call(env, dirs.append(sub, "file", cap))
    with pytest.raises(NotEmptyError):
        call(env, dirs.delete_directory(sub))
    call(env, dirs.remove_entry(sub, "file"))
    call(env, dirs.delete_directory(sub))
    with pytest.raises(NotFoundError):
        call(env, dirs.list_names(sub))


def test_slot_reuse_has_fresh_secret(env):
    dirs, _ = make_dir_server(env)
    old = call(env, dirs.create_directory())
    call(env, dirs.delete_directory(old))
    new = call(env, dirs.create_directory())
    assert new.object == old.object
    from repro.errors import CapabilityError
    with pytest.raises((CapabilityError, NotFoundError)):
        call(env, dirs.list_names(old))


def test_directory_table_exhaustion(env):
    dirs, _ = make_dir_server(env, max_dirs=2)
    call(env, dirs.create_directory())
    call(env, dirs.create_directory())
    with pytest.raises(BadRequestError):
        call(env, dirs.create_directory())


# --------------------------------------------------------------- security


def test_lookup_requires_read_right(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    call(env, dirs.append(root, "f", cap))
    create_only = restrict(root, RIGHT_CREATE)
    with pytest.raises(RightsError):
        call(env, dirs.lookup(create_only, "f"))


def test_append_requires_create_right(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    reader = restrict(root, RIGHT_READ)
    with pytest.raises(RightsError):
        call(env, dirs.append(reader, "f", cap))


def test_remove_requires_delete_right(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    call(env, dirs.append(root, "f", cap))
    reader = restrict(root, RIGHT_READ | RIGHT_CREATE)
    with pytest.raises(RightsError):
        call(env, dirs.remove_entry(reader, "f"))


# ------------------------------------------------------------ path walking


def build_tree(env, dirs, bullet):
    """/home/user/notes.txt plus /etc."""
    root = call(env, dirs.create_directory())
    home = call(env, dirs.create_directory())
    user = call(env, dirs.create_directory())
    etc = call(env, dirs.create_directory())
    notes = call(env, bullet.create(b"my notes", p_factor=1))
    call(env, dirs.append(root, "home", home))
    call(env, dirs.append(root, "etc", etc))
    call(env, dirs.append(home, "user", user))
    call(env, dirs.append(user, "notes.txt", notes))
    return root, notes


def test_lookup_path(env):
    dirs, bullet = make_dir_server(env)
    root, notes = build_tree(env, dirs, bullet)
    assert call(env, dirs.lookup_path(root, "home/user/notes.txt")) == notes
    assert call(env, dirs.lookup_path(root, "/home/user/notes.txt")) == notes


def test_lookup_path_empty_returns_root(env):
    dirs, bullet = make_dir_server(env)
    root, _ = build_tree(env, dirs, bullet)
    assert call(env, dirs.lookup_path(root, "")) == root
    assert call(env, dirs.lookup_path(root, "/")) == root


def test_lookup_path_through_file_rejected(env):
    dirs, bullet = make_dir_server(env)
    root, _ = build_tree(env, dirs, bullet)
    with pytest.raises(NotADirectoryError_):
        call(env, dirs.lookup_path(root, "home/user/notes.txt/deeper"))


def test_lookup_path_missing_component(env):
    dirs, bullet = make_dir_server(env)
    root, _ = build_tree(env, dirs, bullet)
    with pytest.raises(NotFoundError):
        call(env, dirs.lookup_path(root, "home/nobody/file"))


# ------------------------------------------------------------ versioning


def test_history_walks_version_chain(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    call(env, dirs.append(root, "a", cap))
    call(env, dirs.append(root, "b", cap))
    call(env, dirs.remove_entry(root, "a"))
    chain = call(env, dirs.history(root))
    assert len(chain) == 4  # empty, +a, +ab, +b
    # The oldest version decodes to the empty directory.
    oldest = call(env, bullet.read(chain[-1]))
    assert DirectoryRows.decode(oldest).rows == {}
    # The second-newest still contains both entries.
    prev = call(env, bullet.read(chain[1]))
    assert set(DirectoryRows.decode(prev).rows) == {"a", "b"}


def test_prune_history_deletes_old_versions(env):
    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    cap = call(env, bullet.create(b"x", p_factor=1))
    for i in range(5):
        call(env, dirs.append(root, f"n{i}", cap))
    files_before = bullet.table.live_count
    deleted = call(env, dirs.prune_history(root, keep=1))
    assert deleted == 5
    assert bullet.table.live_count == files_before - 5
    # The current version still works.
    assert len(call(env, dirs.list_names(root))) == 5


def test_prune_keep_zero_rejected(env):
    dirs, _ = make_dir_server(env)
    root = call(env, dirs.create_directory())
    with pytest.raises(BadRequestError):
        call(env, dirs.prune_history(root, keep=0))


# --------------------------------------------------------------- recovery


def test_directory_survives_reboot(env):
    dirs, bullet = make_dir_server(env)
    root, notes = build_tree(env, dirs, bullet)
    dirs.crash()
    # Same service name => same well-known port; capabilities stay valid.
    reborn = DirectoryServer(env, dirs.disk, LocalBulletStub(bullet),
                             small_testbed(), name="directory",
                             max_directories=dirs.max_directories)
    count = env.run(until=env.process(reborn.boot()))
    assert count == 4
    root2 = Capability(port=reborn.port, object=root.object,
                       rights=root.rights, check=root.check)
    assert call(env, reborn.lookup_path(root2, "home/user/notes.txt")) == notes


def test_client_cache_validation_flow(env):
    """The §5 currency check: a cached file is stale exactly when the
    directory entry moved to a new capability."""
    from repro.client import CachingBulletClient

    dirs, bullet = make_dir_server(env)
    root = call(env, dirs.create_directory())
    v1 = call(env, bullet.create(b"version 1", p_factor=1))
    call(env, dirs.append(root, "doc", v1))

    client = CachingBulletClient(LocalBulletStub(bullet), capacity_bytes=1 << 16)
    data = call(env, client.read(v1))
    assert data == b"version 1"
    current, cap = call(env, client.lookup_validated(dirs, root, "doc", v1))
    assert current and cap == v1
    assert call(env, client.read(v1)) == b"version 1"
    assert client.hits == 1

    v2 = call(env, bullet.create(b"version 2", p_factor=1))
    call(env, dirs.replace(root, "doc", v2))
    current, cap = call(env, client.lookup_validated(dirs, root, "doc", v1))
    assert not current and cap == v2
    assert call(env, client.read(cap)) == b"version 2"
