"""Per-rule tests for repro.analysis over the fixtures in
``tests/analysis_fixtures/``.

Every rule gets a positive test (the bad fixture yields exactly the
expected findings, at the expected lines, with no cross-rule noise) and
a negative test (the good fixture is clean). Suppression pragmas,
config allowlists, scoping, and rule selection are covered separately.
"""

from pathlib import Path

import pytest

from repro.analysis import Config, all_rules, analyze_paths, rule_ids
from repro.errors import BadRequestError

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

#: Every registered rule. P001 (stale-pragma) has no fixture pair: it
#: only runs under --strict-pragmas and is covered separately below.
ALL_RULES = ("D001", "D002", "D003", "S001", "C001", "C002", "A001",
             "L001", "L002", "L003", "L004", "P001")

#: rule -> (bad fixture, expected finding lines, good fixture)
CASES = {
    "D001": ("d001_bad.py", [8, 9], "d001_good.py"),
    "D002": ("d002_bad.py", [3, 10, 11, 12, 17], "d002_good.py"),
    "D003": ("repro/sim/d003_bad.py", [12, 14, 17, 19, 21],
             "repro/sim/d003_good.py"),
    "S001": ("s001_bad.py", [9, 10, 19, 20], "s001_good.py"),
    "C001": ("c001_bad/core/server.py", [14], "c001_good/core/server.py"),
    "C002": ("c002_bad/core/server.py", [9, 17], "c002_good/core/server.py"),
    "A001": ("a001_bad.py", [5, 7], "a001_good.py"),
    "L001": ("l001_bad.py", [9, 12, 18], "l001_good.py"),
    "L002": ("l002_bad.py", [12, 20, 29], "l002_good.py"),
    "L003": ("l003_bad.py", [13, 25], "l003_good.py"),
    "L004": ("l004_bad.py", [18], "l004_good.py"),
}


def run(path: Path, config: Config = None):
    return analyze_paths([str(path)], config)


def test_registry_has_all_rules():
    assert set(rule_ids()) == set(ALL_RULES)
    assert len(all_rules()) == len(ALL_RULES)


@pytest.mark.parametrize("rule", sorted(CASES))
def test_bad_fixture_positive(rule):
    bad, lines, _good = CASES[rule]
    result = run(FIXTURES / bad)
    assert not result.parse_errors
    # All rules ran, yet only the rule under test fires — the fixtures
    # double as cross-rule false-positive checks.
    got = [(f.rule, f.line) for f in result.findings]
    assert got == [(rule, line) for line in lines]
    assert result.exit_code == 1


@pytest.mark.parametrize("rule", sorted(CASES))
def test_good_fixture_negative(rule):
    _bad, _lines, good = CASES[rule]
    result = run(FIXTURES / good)
    assert not result.parse_errors
    assert result.findings == []
    assert result.clean
    assert result.exit_code == 0


def test_findings_carry_rendered_location():
    result = run(FIXTURES / "a001_bad.py")
    rendered = result.findings[0].render()
    assert "a001_bad.py:5:" in rendered
    assert "A001" in rendered


# ---------------------------------------------------------- suppression

def test_suppression_pragmas_silence_findings():
    assert run(FIXTURES / "suppressed.py").clean


def test_suppression_same_line_and_next_line(tmp_path):
    source = (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    a = time.time()  # repro: allow(D001)\n"
        "    # repro: allow(D001)\n"
        "    b = time.time()\n"
        "    c = time.time()\n"
        "    return a, b, c\n"
    )
    path = tmp_path / "pragmas.py"
    path.write_text(source)
    result = run(path)
    # Only the unpragma'd read on line 7 survives.
    assert [(f.rule, f.line) for f in result.findings] == [("D001", 7)]


def test_suppression_is_per_rule(tmp_path):
    path = tmp_path / "wrong_rule.py"
    path.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow(S001)\n"
    )
    result = run(path)
    assert [(f.rule, f.line) for f in result.findings] == [("D001", 4)]


# ------------------------------------------------- allowlists and scope

def test_wallclock_allowlist():
    config = Config(wallclock_allow=("*d001_bad.py",))
    assert run(FIXTURES / "d001_bad.py", config).clean


def test_rng_allowlist():
    config = Config(rng_allow=("*d002_bad.py",))
    assert run(FIXTURES / "d002_bad.py", config).clean


def test_d003_only_fires_in_ordered_scope():
    # The same bad file analyzed with an empty scope is clean: D003 is a
    # replay-core rule, not a whole-program style rule.
    config = Config(ordered_scope=())
    assert run(FIXTURES / "repro" / "sim" / "d003_bad.py", config).clean


def test_c001_only_fires_in_server_scope():
    config = Config(server_scope=())
    assert run(FIXTURES / "c001_bad" / "core" / "server.py", config).clean


# ------------------------------------------------------------ selection

def test_select_restricts_rules():
    config = Config(select=("D001",))
    result = run(FIXTURES / "d002_bad.py", config)
    assert result.clean
    assert result.rules_run == ["D001"]


def test_select_unknown_rule_rejected():
    with pytest.raises(BadRequestError):
        analyze_paths([str(FIXTURES / "d001_good.py")],
                      Config(select=("Z999",)))


# ------------------------------------------------------------- ordering

def test_findings_sorted_by_path_then_line():
    result = analyze_paths([str(FIXTURES)])
    keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
    assert keys == sorted(keys)
    # The whole fixture tree has findings from every fixture-backed rule
    # (P001 stays silent without --strict-pragmas).
    assert {f.rule for f in result.findings} == set(CASES)


# --------------------------------------------------- strict pragma mode

def test_strict_pragmas_flags_stale_pragma(tmp_path):
    path = tmp_path / "stale.py"
    path.write_text(
        "def fine():\n"
        "    return 1  # repro: allow(D001)\n"
    )
    result = analyze_paths([str(path)], strict_pragmas=True)
    assert [(f.rule, f.line) for f in result.findings] == [("P001", 2)]
    assert "allow(D001)" in result.findings[0].message


def test_strict_pragmas_keeps_used_pragma(tmp_path):
    path = tmp_path / "used.py"
    path.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow(D001)\n"
    )
    assert analyze_paths([str(path)], strict_pragmas=True).clean


def test_strict_pragmas_ignores_docstring_mentions(tmp_path):
    path = tmp_path / "doc.py"
    path.write_text(
        '"""Suppress with ``# repro: allow(D001)`` on the line."""\n'
        "\n"
        "def fine():\n"
        "    return 1\n"
    )
    assert analyze_paths([str(path)], strict_pragmas=True).clean


# ------------------------------------------- mutation check (serve path)

def test_deleting_a_release_in_a_serve_path_is_flagged(tmp_path):
    """Mutation-style guard: take the real server source, delete the
    release in TOUCH's finally, and L001 must fire — proof the rule
    watches the actual serve paths, not just synthetic fixtures."""
    source = (Path(__file__).resolve().parents[1]
              / "src" / "repro" / "core" / "server.py").read_text()
    intact = tmp_path / "server_intact.py"
    intact.write_text(source)
    assert analyze_paths([str(intact)], Config(select=("L001",))).clean

    needle = (
        "            return self._lives[number]\n"
        "        finally:\n"
        "            locks.release(grant)\n"
    )
    assert needle in source, "touch() no longer matches the mutation target"
    mutated = tmp_path / "server_mutated.py"
    mutated.write_text(source.replace(
        needle,
        "            return self._lives[number]\n"
        "        finally:\n"
        "            pass\n",
    ))
    result = analyze_paths([str(mutated)], Config(select=("L001",)))
    assert [f.rule for f in result.findings] == ["L001"]
    assert "never released" in result.findings[0].message
