"""Tests for atomic multi-entry directory updates (update_many)."""

import pytest

from repro.capability import RIGHT_CREATE, RIGHT_READ, restrict
from repro.client import BulletClient, DirectoryClient, LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import BadRequestError, NotFoundError, RightsError
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import run_process

from conftest import SMALL_DISK, make_bullet, small_testbed


@pytest.fixture
def world(env):
    bullet = make_bullet(env)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           max_directories=16)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    return bullet, dirs


def new_file(env, bullet, data):
    return run_process(env, bullet.create(data, 1))


def test_update_many_binds_and_removes_in_one_version(env, world):
    bullet, dirs = world
    root = run_process(env, dirs.create_directory())
    a = new_file(env, bullet, b"a")
    b = new_file(env, bullet, b"b")
    run_process(env, dirs.append(root, "old", a))
    versions_before = len(run_process(env, dirs.history(root)))

    run_process(env, dirs.update_many(root, {
        "old": None,           # remove
        "new1": a,             # bind
        "new2": b,             # bind
    }))
    assert run_process(env, dirs.list_names(root)) == ["new1", "new2"]
    # Exactly ONE new version for the whole transaction.
    assert len(run_process(env, dirs.history(root))) == versions_before + 1


def test_update_many_atomic_swap(env, world):
    """The classic need: swap two bindings with no intermediate state."""
    bullet, dirs = world
    root = run_process(env, dirs.create_directory())
    blue = new_file(env, bullet, b"blue")
    green = new_file(env, bullet, b"green")
    run_process(env, dirs.append(root, "active", blue))
    run_process(env, dirs.append(root, "standby", green))

    run_process(env, dirs.update_many(root, {
        "active": green,
        "standby": blue,
    }))
    stub = LocalBulletStub(bullet)
    active = run_process(env, dirs.lookup(root, "active"))
    standby = run_process(env, dirs.lookup(root, "standby"))
    assert run_process(env, stub.read(active)) == b"green"
    assert run_process(env, stub.read(standby)) == b"blue"


def test_update_many_failure_changes_nothing(env, world):
    """One bad change (removing a missing name) aborts the whole batch."""
    bullet, dirs = world
    root = run_process(env, dirs.create_directory())
    a = new_file(env, bullet, b"a")
    run_process(env, dirs.append(root, "keep", a))
    with pytest.raises(NotFoundError):
        run_process(env, dirs.update_many(root, {
            "added": a,
            "ghost": None,  # fails
        }))
    # Nothing landed.
    assert run_process(env, dirs.list_names(root)) == ["keep"]


def test_update_many_rights(env, world):
    bullet, dirs = world
    root = run_process(env, dirs.create_directory())
    a = new_file(env, bullet, b"a")
    run_process(env, dirs.append(root, "x", a))
    create_only = restrict(root, RIGHT_CREATE | RIGHT_READ)
    # Pure binds need only CREATE...
    run_process(env, dirs.update_many(create_only, {"y": a}))
    # ...but any removal also needs DELETE.
    with pytest.raises(RightsError):
        run_process(env, dirs.update_many(create_only, {"x": None}))


def test_update_many_validation(env, world):
    _bullet, dirs = world
    root = run_process(env, dirs.create_directory())
    with pytest.raises(BadRequestError):
        run_process(env, dirs.update_many(root, {}))
    with pytest.raises(BadRequestError):
        run_process(env, dirs.update_many(root, {"a/b": None}))


def test_update_many_over_rpc(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           transport=rpc, max_directories=8)
    dirs.format()
    run_process(env, dirs.boot())
    names = DirectoryClient(env, rpc, default_port=dirs.port)
    bullet_client = BulletClient(env, rpc, bullet.port)

    root = run_process(env, names.create_directory())
    a = run_process(env, bullet_client.create(b"a", 1))
    b = run_process(env, bullet_client.create(b"b", 1))
    run_process(env, names.append(root, "temp", a))
    run_process(env, names.update_many(root, {
        "temp": None,
        "pair": (a, b),   # a capability set through the wire
        "solo": b,
    }))
    assert run_process(env, names.list_names(root)) == ["pair", "solo"]
    assert run_process(env, names.lookup_set(root, "pair")) == [a, b]
