"""Unit tests for the observability plane (repro.obs): registry
instruments, exporters, span pairing, and the stats facade."""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.errors import BadRequestError, ConsistencyError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    RegistryStats,
    Span,
    durations_by_name,
    pair_spans,
    render_json,
    render_text,
)
from repro.sim import Environment, Tracer
from repro.sim.trace import NullTracer


# ------------------------------------------------------------- registry


def test_counter_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("repro_things_total", kind="a")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(BadRequestError):
        c.inc(-1)
    assert c.value == 42


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("repro_level")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12


def test_histogram_bucket_placement():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        h.observe(value)
    assert h.count == 4
    assert h.total == pytest.approx(5.555)
    cumulative = dict(h.cumulative())
    assert cumulative["0.01"] == 1
    assert cumulative["0.1"] == 2
    assert cumulative["1.0"] == 3
    assert cumulative["+Inf"] == 4


def test_histogram_rejects_bad_buckets():
    reg = MetricsRegistry()
    with pytest.raises(BadRequestError):
        reg.histogram("repro_bad", buckets=(0.2, 0.1))
    with pytest.raises(BadRequestError):
        reg.histogram("repro_bad2", buckets=())
    reg.histogram("repro_ok", buckets=(1.0, 2.0))
    with pytest.raises(ConsistencyError):
        reg.histogram("repro_ok", buckets=(1.0, 3.0))


def test_get_or_create_identity_and_label_order():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total", b="2", a="1")
    b = reg.counter("repro_x_total", a="1", b="2")
    assert a is b
    assert a.key == 'repro_x_total{a="1",b="2"}'
    assert reg.counter("repro_x_total", a="1") is not a


def test_kind_conflict_and_bad_names():
    reg = MetricsRegistry()
    reg.counter("repro_thing_total")
    with pytest.raises(ConsistencyError):
        reg.gauge("repro_thing_total")
    with pytest.raises(BadRequestError):
        reg.counter("0bad")
    with pytest.raises(BadRequestError):
        reg.counter("repro_ok_total", **{"bad-label": "x"})


def test_value_find_total():
    reg = MetricsRegistry()
    reg.counter("repro_ops_total", server="a").inc(3)
    reg.counter("repro_ops_total", server="b").inc(4)
    assert reg.value("repro_ops_total", server="a") == 3
    assert reg.value("repro_ops_total", server="missing") == 0
    assert reg.find("repro_ops_total", server="missing") is None
    assert reg.total("repro_ops_total") == 7


# ------------------------------------------------------------ exporters


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_ops_total", server="s1").inc(3)
    reg.gauge("repro_frag", area="s1:disk").set(0.25)
    h = reg.histogram("repro_lat_seconds", buckets=(0.01, 0.1))
    h.observe(0.05)
    return reg


def test_render_text_shape():
    text = render_text(_sample_registry())
    assert "# TYPE repro_ops_total counter" in text
    assert 'repro_ops_total{server="s1"} 3' in text
    assert 'repro_frag{area="s1:disk"} 0.25' in text
    assert '# TYPE repro_lat_seconds histogram' in text
    assert 'repro_lat_seconds_bucket{le="0.01"} 0' in text
    assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_lat_seconds_sum 0.05" in text
    assert "repro_lat_seconds_count 1" in text
    assert text.endswith("\n")


def test_render_deterministic_across_builds():
    # Same instruments registered in a different order render the same.
    a = _sample_registry()
    b = MetricsRegistry()
    h = b.histogram("repro_lat_seconds", buckets=(0.01, 0.1))
    h.observe(0.05)
    b.gauge("repro_frag", area="s1:disk").set(0.25)
    b.counter("repro_ops_total", server="s1").inc(3)
    assert render_text(a) == render_text(b)
    assert render_json(a) == render_json(b)
    assert render_json(a).endswith("\n")


def test_default_buckets_ascending():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# --------------------------------------------------------------- facade


class _DemoStats(RegistryStats):
    _PREFIX = "repro_demo"
    _COUNTER_FIELDS = ("hits", "misses")


def test_registry_stats_facade_roundtrip():
    reg = MetricsRegistry()
    stats = _DemoStats(reg, unit="u1")
    stats.hits += 2
    stats.misses += 1
    assert stats.hits == 2
    assert reg.value("repro_demo_hits_total", unit="u1") == 2
    assert stats.snapshot() == {"hits": 2, "misses": 1}
    with pytest.raises(BadRequestError):
        stats.hits -= 1  # counters never rewind
    with pytest.raises(AttributeError):
        stats.no_such_field


def test_registry_stats_private_registry_default():
    stats = _DemoStats()
    stats.hits += 1
    assert stats.registry.value("repro_demo_hits_total") == 1


# ---------------------------------------------------------------- spans


def test_span_begin_end_pairing():
    env = Environment()
    tracer = Tracer(env=env)
    outer = tracer.begin_span("span", "outer", op="READ")
    env.run(until=1.5)
    inner = tracer.begin_span("span", "inner", parent=outer)
    env.run(until=2.0)
    tracer.end_span(inner, "span", "inner")
    tracer.end_span(outer, "span", "outer", status=0)
    spans = pair_spans(tracer.select("span"))
    assert [s.name for s in spans] == ["outer", "inner"]
    assert isinstance(spans[0], Span)
    assert spans[0].duration == pytest.approx(2.0)
    assert spans[1].duration == pytest.approx(0.5)
    assert spans[1].parent == outer
    assert dict(spans[0].begin_fields)["op"] == "READ"
    assert dict(spans[0].end_fields)["status"] == 0
    assert durations_by_name(spans)["inner"] == pytest.approx(0.5)


def test_span_ids_are_sequential():
    env = Environment()
    tracer = Tracer(env=env)
    ids = [tracer.begin_span("span", f"s{i}") for i in range(3)]
    assert ids == [1, 2, 3]


def test_unclosed_span_raises_unless_allowed():
    env = Environment()
    tracer = Tracer(env=env)
    tracer.begin_span("span", "open")
    with pytest.raises(ConsistencyError):
        pair_spans(tracer.select("span"))
    # allow_open tolerates (and omits) the still-open span.
    assert pair_spans(tracer.select("span"), allow_open=True) == []


def test_orphan_end_and_duplicate_begin_raise():
    env = Environment()
    tracer = Tracer(env=env)
    tracer.end_span(99, "span", "ghost")
    with pytest.raises(ConsistencyError):
        pair_spans(tracer.select("span"))
    tracer.clear()
    tracer.emit("span", "dup", span=7, phase="B")
    tracer.emit("span", "dup", span=7, phase="B")
    with pytest.raises(ConsistencyError):
        pair_spans(tracer.select("span"))


def test_disabled_tracer_spans_noop():
    env = Environment()
    null = NullTracer(env)
    assert null.begin_span("span", "x") == 0
    null.end_span(0, "span", "x")
    assert null.records == []


# ------------------------------------------------------------- analyzer


def test_obs_package_is_analyzer_clean():
    obs_dir = Path(__file__).resolve().parents[1] / "src" / "repro" / "obs"
    result = analyze_paths([str(obs_dir)])
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, f"repro.obs has analyzer findings:\n{rendered}"
    assert result.files_checked >= 5
