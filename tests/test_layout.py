"""Tests for volume layout computation, formatting, and the Fig. 1
renderer, plus the ascii chart helper."""

import pytest

from repro.core import (
    ExtentFreeList,
    InodeTable,
    VolumeLayout,
    format_volume,
    render_layout,
)
from repro.bench import MeasurementTable, ascii_chart
from repro.disk import VirtualDisk
from repro.errors import BadRequestError
from repro.sim import Environment
from repro.units import KB, MB

from conftest import SMALL_DISK


def make_disk(env):
    return VirtualDisk(env, SMALL_DISK, name="d")


def test_layout_partitions_disk(env):
    disk = make_disk(env)
    layout = VolumeLayout.for_disk(disk, inode_count=256)
    # 256 inodes x 16 bytes = 4 KB = 8 blocks of 512.
    assert layout.inode_table_blocks == 8
    assert layout.data_start == 8
    assert layout.data_blocks == disk.total_blocks - 8
    assert layout.inode_table_start == 0


def test_layout_descriptor_round_trip(env):
    disk = make_disk(env)
    layout = VolumeLayout.for_disk(disk, inode_count=256)
    desc = layout.descriptor
    assert desc.block_size == 512
    assert desc.control_size == layout.inode_table_blocks
    assert desc.data_size == layout.data_blocks


def test_layout_rejects_oversized_inode_table(env):
    disk = make_disk(env)
    with pytest.raises(BadRequestError):
        VolumeLayout.for_disk(disk, inode_count=10_000_000)


def test_blocks_for_rounds_up(env):
    disk = make_disk(env)
    layout = VolumeLayout.for_disk(disk, inode_count=256)
    assert layout.blocks_for(0) == 0
    assert layout.blocks_for(1) == 1
    assert layout.blocks_for(512) == 1
    assert layout.blocks_for(513) == 2


def test_format_volume_writes_decodable_table(env):
    disk = make_disk(env)
    table = format_volume(disk, inode_count=256)
    raw = disk.read_raw(0, table.table_blocks)
    decoded = InodeTable.decode(raw, disk.block_size)
    assert decoded.live_count == 0
    assert decoded.free_count == 255
    assert decoded.descriptor == table.descriptor


def test_render_layout_empty_volume(env):
    disk = make_disk(env)
    table = format_volume(disk, inode_count=256)
    freelist = ExtentFreeList(8, disk.total_blocks - 8)
    art = render_layout(table, freelist)
    assert "Disk Descriptor" in art
    assert "free" in art
    # A box: every line same width.
    widths = {len(line) for line in art.splitlines()}
    assert len(widths) == 1


def test_render_layout_truncates_long_listings(env):
    disk = make_disk(env)
    table = format_volume(disk, inode_count=256)
    freelist = ExtentFreeList(8, disk.total_blocks - 8)
    for i in range(40):
        start = freelist.allocate(2)
        table.allocate(secret=i + 1, start_block=start, size=1024)
    art = render_layout(table, freelist, max_rows=10)
    assert "more inodes" in art
    assert "more segments" in art


def test_ascii_chart_scales_and_labels():
    table = MeasurementTable(title="T", columns=["READ"])
    table.record(1 * KB, "READ", 0.01)       # 100 KB/s
    table.record(1 * MB, "READ", 2.0)        # 512 KB/s
    chart = ascii_chart({"series": table}, {"series": "READ"}, width=40)
    lines = chart.splitlines()
    assert any("1 Kbytes" in line for line in lines)
    assert any("1 Mbyte" in line for line in lines)
    bars = [line for line in lines if "#" in line]
    assert len(bars) == 2
    # The 512 KB/s bar is the full width; the 100 KB/s one shorter.
    assert max(line.count("#") for line in bars) == 40
    assert min(line.count("#") for line in bars) < 10


def test_ascii_chart_empty():
    table = MeasurementTable(title="T", columns=["READ"])
    assert "(no data)" in ascii_chart({"s": table}, {"s": "READ"})
