"""Tests for the UNIX emulation over Bullet + directory."""

import pytest

from repro.client import LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import BadRequestError, NotFoundError
from repro.sim import run_process
from repro.unixemu import UnixEmulation

from conftest import SMALL_DISK, make_bullet, small_testbed


def make_unix(env, keep_versions=False):
    bullet = make_bullet(env)
    disk = VirtualDisk(env, SMALL_DISK, name="dirdisk")
    dirs = DirectoryServer(env, disk, LocalBulletStub(bullet), small_testbed(),
                           max_directories=32)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    root = run_process(env, dirs.create_directory())
    unix = UnixEmulation(env, LocalBulletStub(bullet), dirs, root,
                         keep_versions=keep_versions)
    return unix, bullet, dirs


def run(env, gen):
    return run_process(env, gen)


def test_create_write_close_read(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/hello.txt", "w")
        yield from unix.write(fd, b"hello unix emulation")
        yield from unix.close(fd)
        fd = yield from unix.open("/hello.txt", "r")
        data = yield from unix.read(fd, 100)
        yield from unix.close(fd)
        return data

    assert run(env, scenario()) == b"hello unix emulation"


def test_open_missing_file(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        try:
            yield from unix.open("/ghost", "r")
        except NotFoundError:
            return "missing"

    assert run(env, scenario()) == "missing"


def test_bad_mode_rejected(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        try:
            yield from unix.open("/x", "rw")
        except BadRequestError:
            return "bad mode"

    assert run(env, scenario()) == "bad mode"


def test_lseek_and_partial_io(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/f", "w")
        yield from unix.write(fd, b"0123456789")
        yield from unix.lseek(fd, 3)
        yield from unix.write(fd, b"XYZ")
        yield from unix.close(fd)
        fd = yield from unix.open("/f", "r")
        yield from unix.lseek(fd, 2)
        data = yield from unix.read(fd, 5)
        return data

    assert run(env, scenario()) == b"2XYZ6"


def test_lseek_whence_variants(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/f", "w")
        yield from unix.write(fd, b"abcdef")
        end = yield from unix.lseek(fd, -2, whence=2)
        cur = yield from unix.lseek(fd, 1, whence=1)
        return end, cur

    assert run(env, scenario()) == (4, 5)


def test_append_mode(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/log", "w")
        yield from unix.write(fd, b"first\n")
        yield from unix.close(fd)
        fd = yield from unix.open("/log", "a")
        yield from unix.write(fd, b"second\n")
        yield from unix.close(fd)
        fd = yield from unix.open("/log", "r")
        return (yield from unix.read(fd, 100))

    assert run(env, scenario()) == b"first\nsecond\n"


def test_each_close_creates_new_immutable_version(env):
    unix, bullet, dirs = make_unix(env)

    def scenario():
        fd = yield from unix.open("/doc", "w")
        yield from unix.write(fd, b"v1")
        cap1 = yield from unix.close(fd)
        fd = yield from unix.open("/doc", "r+")
        yield from unix.lseek(fd, 0)
        yield from unix.write(fd, b"v2")
        cap2 = yield from unix.close(fd)
        return cap1, cap2

    cap1, cap2 = run(env, scenario())
    assert cap1.object != cap2.object
    # Default: old version is deleted from the Bullet server.
    with pytest.raises(NotFoundError):
        run(env, bullet.read(cap1))
    assert run(env, bullet.read(cap2)) == b"v2"


def test_keep_versions_retains_old_files(env):
    unix, bullet, _d = make_unix(env, keep_versions=True)

    def scenario():
        fd = yield from unix.open("/doc", "w")
        yield from unix.write(fd, b"version one")
        cap1 = yield from unix.close(fd)
        fd = yield from unix.open("/doc", "w")
        yield from unix.write(fd, b"version two")
        yield from unix.close(fd)
        return cap1

    cap1 = run(env, scenario())
    assert run(env, bullet.read(cap1)) == b"version one"


def test_concurrent_reader_keeps_old_version(env):
    """A process holding the file open across another's commit keeps
    reading the immutable version it opened."""
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/shared", "w")
        yield from unix.write(fd, b"original contents")
        yield from unix.close(fd)
        reader_fd = yield from unix.open("/shared", "r")
        first = yield from unix.read(reader_fd, 8)  # loads whole file
        writer_fd = yield from unix.open("/shared", "w")
        yield from unix.write(writer_fd, b"replaced!")
        yield from unix.close(writer_fd)
        rest = yield from unix.read(reader_fd, 100)
        return first + rest

    assert run(env, scenario()) == b"original contents"


def test_close_clean_file_creates_nothing(env):
    unix, bullet, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/f", "w")
        yield from unix.write(fd, b"x")
        yield from unix.close(fd)
        creates_before = bullet.stats.creates
        fd = yield from unix.open("/f", "r")
        yield from unix.read(fd, 10)
        yield from unix.close(fd)
        return bullet.stats.creates - creates_before

    assert run(env, scenario()) == 0


def test_mkdir_and_nested_paths(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        yield from unix.mkdir("/home")
        yield from unix.mkdir("/home/user")
        fd = yield from unix.open("/home/user/notes", "w")
        yield from unix.write(fd, b"nested file")
        yield from unix.close(fd)
        names = yield from unix.listdir("/home")
        st = yield from unix.stat("/home/user/notes")
        return names, st

    names, st = run(env, scenario())
    assert names == ["user"]
    assert st == {"size": 11, "is_directory": False}


def test_unlink_deletes_file(env):
    unix, bullet, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/f", "w")
        yield from unix.write(fd, b"doomed")
        cap = yield from unix.close(fd)
        yield from unix.unlink("/f")
        return cap

    cap = run(env, scenario())
    with pytest.raises(NotFoundError):
        run(env, bullet.read(cap))

    def reopen():
        try:
            yield from unix.open("/f", "r")
        except NotFoundError:
            return "gone"

    assert run(env, reopen()) == "gone"


def test_rename(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        yield from unix.mkdir("/a")
        yield from unix.mkdir("/b")
        fd = yield from unix.open("/a/file", "w")
        yield from unix.write(fd, b"moving")
        yield from unix.close(fd)
        yield from unix.rename("/a/file", "/b/renamed")
        fd = yield from unix.open("/b/renamed", "r")
        data = yield from unix.read(fd, 10)
        listing = yield from unix.listdir("/a")
        return data, listing

    data, listing = run(env, scenario())
    assert data == b"moving"
    assert listing == []


def test_ftruncate(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/t", "w")
        yield from unix.write(fd, b"abcdefgh")
        yield from unix.ftruncate(fd, 3)
        yield from unix.close(fd)
        fd = yield from unix.open("/t", "r")
        return (yield from unix.read(fd, 10))

    assert run(env, scenario()) == b"abc"


def test_write_on_readonly_fd_rejected(env):
    unix, _b, _d = make_unix(env)

    def scenario():
        fd = yield from unix.open("/f", "w")
        yield from unix.write(fd, b"x")
        yield from unix.close(fd)
        fd = yield from unix.open("/f", "r")
        try:
            yield from unix.write(fd, b"y")
        except BadRequestError:
            return "read-only"

    assert run(env, scenario()) == "read-only"
