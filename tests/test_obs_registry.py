"""Cached counter handles vs. the facade attribute protocol.

Hot paths (Ethernet fragments, cache probes, per-op server counters)
resolve a :meth:`RegistryStats.handle` once and call ``inc`` directly;
cold paths keep using ``stats.field += n``. Both must observe and
mutate the *same* registry counter — bit-for-bit, including float
accumulation order — or the fast-path migration would silently fork
the accounting the bench artifacts are built from.
"""

from repro.obs import MetricsRegistry, RegistryStats
from repro.obs.export import render_json, render_text


class _DemoStats(RegistryStats):
    _PREFIX = "repro_demo"
    _COUNTER_FIELDS = ("ops", "seconds")


def test_handle_is_the_facade_counter():
    stats = _DemoStats(segment="a")
    handle = stats.handle("ops")
    assert handle is stats.handle("ops"), "handle must be stable"
    handle.inc(3)
    assert stats.ops == 3
    stats.ops += 2
    assert handle.value == 5
    assert stats.registry.value("repro_demo_ops_total", segment="a") == 5


def test_float_accumulation_matches_facade_bitwise():
    # The wire-time counter accumulates floats; the handle path must
    # perform the identical sequence of additions as the facade path.
    deltas = [0.1, 0.2, 0.30000000000000004, 1e-9, 0.7, 123.456]
    via_facade = _DemoStats()
    via_handle = _DemoStats()
    inc = via_handle.handle("seconds").inc
    for d in deltas:
        via_facade.seconds += d
        inc(d)
    # Plain == on floats: any reordering or pre-summation would differ
    # in the low bits and fail here.
    assert via_facade.seconds == via_handle.seconds
    assert via_facade.snapshot() == via_handle.snapshot()


def test_mixed_increment_styles_share_one_sample():
    reg = MetricsRegistry()
    stats = _DemoStats(reg, segment="b")
    stats.handle("ops").inc(1)
    stats.ops += 1
    stats.handle("ops").inc(1)
    assert reg.value("repro_demo_ops_total", segment="b") == 3
    # Exporters read the same sample the handle mutated.
    assert 'repro_demo_ops_total{segment="b"} 3' in render_text(reg)
    assert '"repro_demo_ops_total{segment=\\"b\\"}": 3' in render_json(reg)


def test_handle_rejects_unknown_field():
    stats = _DemoStats()
    try:
        stats.handle("nope")
    except KeyError:
        pass
    else:
        raise AssertionError("handle() must reject undeclared fields")
