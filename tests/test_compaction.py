"""Tests for the disk compaction job (§3's "3 a.m." pass)."""

import pytest

from repro.core import compact_disk, nightly_compaction
from repro.errors import NoSpaceError
from repro.sim import run_process
from repro.units import KB

from conftest import make_bullet


def churn(env, bullet, n=12, size=32 * KB):
    """Create n files then delete every other one, fragmenting the disk."""
    caps = [run_process(env, bullet.create(bytes([i]) * size, p_factor=1))
            for i in range(n)]
    survivors = []
    for i, cap in enumerate(caps):
        if i % 2 == 0:
            run_process(env, bullet.delete(cap))
        else:
            survivors.append((i, cap, bytes([i]) * size))
    return survivors


def test_compaction_coalesces_free_space(env):
    bullet = make_bullet(env)
    survivors = churn(env, bullet)
    assert bullet.disk_free.hole_count > 1
    report = run_process(env, compact_disk(bullet))
    assert bullet.disk_free.hole_count == 1
    assert report.files_moved > 0
    assert report.fragmentation_after <= report.fragmentation_before
    assert report.largest_hole_after >= report.largest_hole_before
    assert report.duration > 0  # moving data costs simulated time


def test_compaction_preserves_file_contents(env):
    bullet = make_bullet(env)
    survivors = churn(env, bullet)
    run_process(env, compact_disk(bullet))
    for _i, cap, expected in survivors:
        bullet.evict(cap.object)  # force disk reads at the new location
        assert run_process(env, bullet.read(cap)) == expected


def test_compaction_updates_both_replicas(env):
    bullet = make_bullet(env)
    survivors = churn(env, bullet, n=6)
    run_process(env, compact_disk(bullet))
    _i, cap, expected = survivors[0]
    inode = bullet.table.get(cap.object)
    blocks = bullet.layout.blocks_for(inode.size)
    for disk in bullet.mirror.disks:
        raw = disk.read_raw(inode.start_block, blocks)
        assert raw[: len(expected)] == expected


def test_compaction_enables_large_allocation(env):
    """The paper's motivation: fragmentation can block a large create
    even with enough total free space; compaction fixes it."""
    from dataclasses import replace

    from conftest import SMALL_DISK, small_testbed
    from repro.units import MB

    # An 8 MB disk the workload can actually fill.
    tiny_disk = replace(SMALL_DISK, capacity_bytes=8 * MB, cylinders=32)
    bullet = make_bullet(env, testbed=small_testbed(disk=tiny_disk))
    block = bullet.layout.block_size
    # Fill the whole data area with 8 equal files, delete every other one.
    chunk_blocks = bullet.disk_free.free_units // 8
    caps = [run_process(env, bullet.create(bytes(chunk_blocks * block), p_factor=0))
            for i in range(8)]
    env.run()
    for cap in caps[::2]:
        run_process(env, bullet.delete(cap))
    big = bullet.disk_free.free_units * block  # total free, but split
    request = min(big, bullet.cache.capacity)
    assert bullet.disk_free.largest_hole * block < request
    with pytest.raises(NoSpaceError, match="fragmented"):
        run_process(env, bullet.create(bytes(request), p_factor=0))
    run_process(env, compact_disk(bullet))
    cap = run_process(env, bullet.create(bytes(request), p_factor=0))
    env.run()
    assert run_process(env, bullet.size(cap)) == request


def test_compaction_on_clean_volume_moves_nothing(env):
    bullet = make_bullet(env)
    run_process(env, bullet.create(bytes(16 * KB), p_factor=1))
    report = run_process(env, compact_disk(bullet))
    assert report.files_moved == 0
    assert report.blocks_moved == 0


def test_nightly_compaction_runs_at_3am(env):
    bullet = make_bullet(env)
    churn(env, bullet, n=6)
    assert bullet.disk_free.hole_count > 1
    env.process(nightly_compaction(bullet))
    env.run(until=2.9 * 3600)
    assert bullet.disk_free.hole_count > 1  # not yet 3 a.m.
    env.run(until=3.2 * 3600)
    assert bullet.disk_free.hole_count == 1


def test_compaction_survives_reboot_scan(env):
    """The relocated inode table must pass the startup consistency scan."""
    from repro.core import BulletServer

    bullet = make_bullet(env)
    survivors = churn(env, bullet, n=8)
    run_process(env, compact_disk(bullet))
    bullet.crash()
    rebooted = BulletServer(env, bullet.mirror, bullet.testbed, name="reboot")
    report = env.run(until=env.process(rebooted.boot()))
    assert report.live_files == len(survivors)
    assert rebooted.disk_free.hole_count == 1
