"""Tests for object aging (std_touch / std_age) and the GC sweep."""

import pytest
from dataclasses import replace

from repro.client import LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import NotFoundError
from repro.gc import gc_daemon, gc_sweep
from repro.sim import run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


def make_world(env, max_lives=3):
    testbed = small_testbed(max_lives=max_lives)
    bullet = make_bullet(env, testbed=testbed)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), testbed,
                           max_directories=16)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    return bullet, dirs


def test_lives_start_at_max(env):
    bullet, _dirs = make_world(env, max_lives=5)
    cap = run_process(env, bullet.create(b"x", 1))
    assert bullet.lives_of(cap.object) == 5


def test_age_decrements_and_touch_resets(env):
    bullet, _dirs = make_world(env, max_lives=5)
    cap = run_process(env, bullet.create(b"x", 1))
    run_process(env, bullet.age_all())
    run_process(env, bullet.age_all())
    assert bullet.lives_of(cap.object) == 3
    run_process(env, bullet.touch(cap))
    assert bullet.lives_of(cap.object) == 5


def test_orphan_reclaimed_after_max_lives_sweeps(env):
    bullet, dirs = make_world(env, max_lives=3)
    orphan = run_process(env, bullet.create(b"nobody references me", 1))
    for sweep in range(3):
        report = run_process(env, gc_sweep(bullet, [dirs]))
    assert orphan.object in report.reclaimed
    with pytest.raises(NotFoundError):
        run_process(env, bullet.read(orphan))


def test_bound_file_survives_indefinitely(env):
    bullet, dirs = make_world(env, max_lives=3)
    root = run_process(env, dirs.create_directory())
    cap = run_process(env, bullet.create(b"reachable", 1))
    run_process(env, dirs.append(root, "keep", cap))
    for _ in range(10):
        report = run_process(env, gc_sweep(bullet, [dirs]))
        assert cap.object not in report.reclaimed
    assert run_process(env, bullet.read(cap)) == b"reachable"


def test_directory_version_files_survive_with_history(env):
    bullet, dirs = make_world(env, max_lives=2)
    root = run_process(env, dirs.create_directory())
    cap = run_process(env, bullet.create(b"f", 1))
    run_process(env, dirs.append(root, "a", cap))
    run_process(env, dirs.append(root, "b", cap))
    chain = run_process(env, dirs.history(root))
    for _ in range(5):
        run_process(env, gc_sweep(bullet, [dirs], include_history=True))
    # Every version file in the chain is still readable.
    for version_cap in chain:
        run_process(env, bullet.read(version_cap))


def test_old_versions_collected_without_history_retention(env):
    """With include_history=False, superseded directory versions are
    unreachable and age out — automatic version pruning."""
    bullet, dirs = make_world(env, max_lives=2)
    root = run_process(env, dirs.create_directory())
    cap = run_process(env, bullet.create(b"f", 1))
    run_process(env, dirs.append(root, "a", cap))
    run_process(env, dirs.append(root, "b", cap))
    chain = run_process(env, dirs.history(root))
    assert len(chain) == 3
    for _ in range(2):
        report = run_process(env, gc_sweep(bullet, [dirs],
                                           include_history=False))
    assert len(report.reclaimed) == 2  # the two superseded versions
    # The current version and the bound file still live.
    assert run_process(env, dirs.list_names(root)) == ["a", "b"]
    assert run_process(env, bullet.read(cap)) == b"f"


def test_unbound_then_bound_file_is_saved(env):
    """A client has max_lives sweeps of grace to bind its new file."""
    bullet, dirs = make_world(env, max_lives=3)
    root = run_process(env, dirs.create_directory())
    cap = run_process(env, bullet.create(b"late binding", 1))
    run_process(env, gc_sweep(bullet, [dirs]))
    run_process(env, gc_sweep(bullet, [dirs]))
    assert bullet.lives_of(cap.object) == 1
    run_process(env, dirs.append(root, "saved", cap))  # bound just in time
    run_process(env, gc_sweep(bullet, [dirs]))
    assert run_process(env, bullet.read(cap)) == b"late binding"
    assert bullet.lives_of(cap.object) == bullet.testbed.bullet.max_lives - 1


def test_gc_daemon_periodic(env):
    bullet, dirs = make_world(env, max_lives=2)
    orphan = run_process(env, bullet.create(b"orphan", 1))
    env.process(gc_daemon(bullet, [dirs], period=100.0))
    env.run(until=150.0)
    assert bullet.lives_of(orphan.object) == 1
    env.run(until=250.0)
    with pytest.raises(NotFoundError):
        bullet.lives_of(orphan.object)


def test_reboot_resets_aging_clock(env):
    """Lives are volatile: a reboot grants every survivor a fresh clock
    (orphans then take max_lives sweeps again — safe, merely lazy)."""
    from repro.core import BulletServer

    bullet, dirs = make_world(env, max_lives=4)
    cap = run_process(env, bullet.create(b"x", 1))
    run_process(env, bullet.age_all())
    assert bullet.lives_of(cap.object) == 3
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    env.run(until=env.process(reborn.boot()))
    assert reborn.lives_of(cap.object) == 4
