"""Unit tests for the speedup harness's derived-figure arithmetic.

The subprocess measurement itself is exercised by the ``bench-speedup``
CI job (it needs a second source tree); here we pin the pure summary
math so the artifact's ratios mean what they claim.
"""

from repro.obs.speedup import SUITES, summarize


def _tree(wall, events):
    return {
        "wall": dict(zip(SUITES, wall)),
        "events_scheduled": dict(zip(SUITES, events)),
    }


def test_summarize_ratios():
    baseline = _tree((2.0, 6.0), (100_000, 300_000))
    current = _tree((1.0, 1.0), (50_000, 50_000))
    out = summarize(baseline, current, target=5.0)
    assert out["speedup"]["fig2_fig3"] == 2.0
    assert out["speedup"]["worker_scaling"] == 6.0
    assert out["speedup"]["combined"] == 4.0  # 8s -> 2s, not a mean
    assert out["events_ratio"] == 4.0
    assert out["target"] == 5.0 and out["target_met"] is False
    # events/sec is annotated onto each tree in place.
    assert baseline["events_per_second"]["fig2_fig3"] == 50_000.0
    assert current["events_per_second"]["worker_scaling"] == 50_000.0


def test_summarize_target_met():
    out = summarize(_tree((5.0, 5.0), (10, 10)), _tree((1.0, 1.0), (5, 5)),
                    target=5.0)
    assert out["speedup"]["combined"] == 5.0
    assert out["target_met"] is True
