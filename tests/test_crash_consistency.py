"""Crash-consistency of the create path.

The per-replica write order is data extent **then** inode block, so a
crash between the two can never leave an inode pointing at garbage —
the worst case is a durable-but-unreferenced file whose creating client
never received the capability. That half-created file is precisely an
orphan, and the GC (object aging) reclaims it.
"""

import pytest

from repro.client import LocalBulletStub
from repro.core import BulletServer
from repro.directory import DirectoryServer
from repro.disk import FaultInjector, VirtualDisk
from repro.errors import DiskIOError, NotFoundError, ReproError
from repro.gc import gc_sweep
from repro.sim import Environment, run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


def test_crash_between_data_and_inode_write_leaves_no_file(env):
    """Kill both disks after the data write but before the inode write:
    on reboot the file must not exist and no blocks may be leaked."""
    bullet = make_bullet(env)
    free_before = bullet.disk_free.free_units
    for disk in bullet.mirror.disks:
        # The data extent of a 16 KB file is one write; fail before the
        # second (inode) write completes.
        FaultInjector(env).fail_after_writes(disk, writes=1)

    with pytest.raises(ReproError):
        run_process(env, bullet.create(bytes(16 * KB), p_factor=2))

    for disk in bullet.mirror.disks:
        disk.repair()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    report = env.run(until=env.process(reborn.boot()))
    # No inode reached the disk => no file, and the scan-derived free
    # list gives all blocks back (nothing leaked).
    assert report.live_files == 0
    assert reborn.disk_free.free_units == free_before


def test_partial_replica_failure_creates_reclaimable_orphan(env):
    """One replica dies mid-create with P-FACTOR=2: the client gets an
    error (paranoia not satisfied), but the surviving replica may hold a
    durable, unreferenced file. The GC sweep reclaims it."""
    testbed = small_testbed(max_lives=2)
    bullet = make_bullet(env, testbed=testbed)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), testbed,
                           max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))

    # The second replica dies after its data write, before its inode
    # write — mid-create, after P-FACTOR validation passed.
    FaultInjector(env).fail_after_writes(bullet.mirror.disks[1], writes=1)
    with pytest.raises(ReproError):
        run_process(env, bullet.create(bytes(16 * KB), p_factor=2))
    env.run(until=env.now + 1.0)  # drain

    # The file exists server-side (inode allocated) but nobody holds a
    # capability and no directory references it: an orphan.
    live = list(bullet.table.live_inodes())
    assert len(live) == 1
    orphan_number = live[0][0]

    reclaimed = []
    for _ in range(testbed.bullet.max_lives):
        report = run_process(env, gc_sweep(bullet, [dirs]))
        reclaimed.extend(report.reclaimed)
    assert orphan_number in reclaimed
    assert bullet.table.live_count == 0
    bullet.disk_free.check_invariants()


def test_delete_write_through_survives_crash(env):
    """A completed DELETE is durable: after reboot the file stays gone
    and its space stays free."""
    bullet = make_bullet(env)
    cap = run_process(env, bullet.create(b"doomed", p_factor=2))
    run_process(env, bullet.delete(cap))
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    report = env.run(until=env.process(reborn.boot()))
    assert report.live_files == 0
    with pytest.raises(NotFoundError):
        run_process(env, reborn.read(cap))


def test_surviving_replica_serves_after_total_primary_loss_mid_churn(env):
    """Interleaved creates/deletes while the primary dies partway: the
    survivor's state passes the startup consistency scan."""
    bullet = make_bullet(env)
    caps = []
    FaultInjector(env).fail_after_writes(bullet.mirror.disks[0], writes=12)
    for i in range(10):
        try:
            cap = run_process(env, bullet.create(bytes([i]) * 4096, p_factor=1))
            caps.append((i, cap))
        except (DiskIOError, ReproError):
            continue
    env.run(until=env.now + 1.0)
    # Reboot purely from the surviving replica.
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    env.run(until=env.process(reborn.boot()))  # scan must not raise
    for i, cap in caps:
        try:
            data = run_process(env, reborn.read(cap))
        except NotFoundError:
            continue  # created on the dead primary only — acceptable
        assert data == bytes([i]) * 4096
