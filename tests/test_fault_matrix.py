"""The fault matrix: (fault kind x operation x seed) end-to-end cells.

Every cell builds a fresh networked world (Bullet server on mirrored
disks behind Amoeba-style RPC), pre-loads files, runs one fault scenario
from a declarative :class:`FaultPlan` while a client performs the cell's
operation mid-fault, and then verifies:

* the operation either succeeded (possibly after retries/backoff) or
  raised a typed :class:`ReproError` — never hung (a hard simulated-time
  ceiling guards every cell);
* no stored file was corrupted: after the dust settles the server is
  crashed and rebooted from its disks, and every file's bytes must
  read back exactly (the scan-on-startup consistency path runs too).

Cells are parametrized over two master seeds; each must pass
deterministically under both.
"""

import pytest

from repro.client import BulletClient, DirectoryClient, LocalBulletStub, RetryPolicy
from repro.core import BulletServer
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import ReproError
from repro.faults import FaultController, FaultPlan
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import AnyOf, Environment, SeededStream, Tracer, run_process

from conftest import SMALL_DISK, make_bullet, small_testbed

#: Simulated-time ceiling per cell: generous against the largest fault
#: window (~2 s) plus full retry schedules, tiny against wall-clock.
CEILING = 120.0

SEEDS = [3, 17]

RETRY = RetryPolicy(max_attempts=10, base_delay=0.2, multiplier=2.0,
                    max_delay=1.0, jitter=0.1)


class World:
    """One networked test world plus its fault-plane bookkeeping."""

    def __init__(self, seed: int, **server_kwargs):
        self.seed = seed
        self.env = Environment()
        self.tracer = Tracer(self.env, categories={"fault", "retry"})
        self.eth = Ethernet(self.env, EthernetProfile())
        self.rpc = RpcTransport(self.env, self.eth, CpuProfile())
        self.bullet = make_bullet(self.env, transport=self.rpc,
                                  **server_kwargs)
        self.client = BulletClient(
            self.env, self.rpc, self.bullet.port, timeout=0.5,
            retry=RETRY, retry_stream=SeededStream(seed, "client-retry"),
            tracer=self.tracer,
        )
        # Known-good files created before any fault is armed; the cell's
        # post-fault audit reads all of them back.
        self.expected: dict = {}  # Capability -> bytes
        for i in range(3):
            payload = bytes([i]) * (1024 + 512 * i)
            cap = run_process(self.env, self.bullet.create(payload, 2))
            self.expected[cap] = payload

    def controller(self, plan: FaultPlan) -> FaultController:
        ctrl = FaultController(self.env, plan, master_seed=self.seed,
                               tracer=self.tracer)
        for disk in self.bullet.mirror.disks:
            ctrl.attach_disk(disk.name, disk)
        ctrl.attach_ethernet("net", self.eth)
        ctrl.attach_server("bullet", self.bullet)
        return ctrl

    def run_to_completion(self, gen):
        """The no-hang harness: the scenario must finish before the
        ceiling; typed errors propagate, hangs fail the test."""
        done = self.env.process(gen)
        self.env.run(until=AnyOf(self.env, [done, self.env.timeout(CEILING)]))
        assert done.triggered, "fault cell hung past the simulated ceiling"
        if not done.ok:
            raise done.value
        return done.value

    def audit_storage(self):
        """Reboot from disk and byte-compare every known file."""
        self.bullet.crash()
        reborn = BulletServer(self.env, self.bullet.mirror,
                              self.bullet.testbed, name="bullet")
        self.env.run(until=self.env.process(reborn.boot()))
        for cap, payload in self.expected.items():
            assert run_process(self.env, reborn.read(cap)) == payload
        return reborn


def _flaky_extent_of(world: World):
    """The on-disk extent of one pre-created file (so a flaky window is
    guaranteed to cover blocks a read will touch)."""
    cap = next(iter(world.expected))
    inode = world.bullet.table.get(cap.object)
    nblocks = world.bullet.layout.blocks_for(inode.size)
    return cap, inode.start_block, nblocks


def _plan_for(world: World, kind: str, t0: float) -> FaultPlan:
    primary = world.bullet.mirror.disks[0].name
    if kind == "disk.fail":
        return FaultPlan().disk_fail(primary, at=t0 + 0.1)
    if kind == "disk.degrade":
        return FaultPlan().disk_degrade(primary, at=t0 + 0.1, factor=10.0,
                                        duration=1.5)
    if kind == "disk.flaky":
        _cap, start, nblocks = _flaky_extent_of(world)
        return FaultPlan().disk_flaky(primary, at=t0 + 0.1,
                                      start_block=start, nblocks=nblocks,
                                      duration=1.5)
    if kind == "net.partition":
        return FaultPlan().net_partition(at=t0 + 0.1, duration=2.0)
    if kind == "net.loss":
        return FaultPlan().net_loss(at=t0 + 0.1, duration=1.5,
                                    probability=0.4)
    if kind == "net.latency":
        return FaultPlan().net_latency(at=t0 + 0.1, duration=1.5,
                                       extra=0.005)
    if kind == "server.crash":
        return (FaultPlan().server_crash("bullet", at=t0 + 0.1)
                           .server_restart("bullet", at=t0 + 1.2))
    raise AssertionError(f"unknown matrix kind {kind}")


FAULT_KINDS = ["disk.fail", "disk.degrade", "disk.flaky", "net.partition",
               "net.loss", "net.latency", "server.crash"]
OPERATIONS = ["read", "create", "size"]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("op", OPERATIONS)
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_matrix_cell(kind, op, seed):
    world = World(seed)
    env = world.env
    t0 = env.now
    ctrl = world.controller(_plan_for(world, kind, t0)).start()
    target_cap = next(iter(world.expected))
    if kind == "disk.flaky":
        # Force the mid-fault read down the disk path (cache hits would
        # trivially dodge the flaky extent).
        world.bullet.evict(target_cap.object)

    def scenario():
        yield env.timeout(0.2)  # now inside the fault window
        if op == "read":
            data = yield from world.client.read(target_cap)
            assert data == world.expected[target_cap]
        elif op == "create":
            payload = b"mid-fault file " * 64
            cap = yield from world.client.create(payload, 1)
            world.expected[cap] = payload
        elif op == "size":
            size = yield from world.client.size(target_cap)
            assert size == len(world.expected[target_cap])
        # Let every window close and background writes settle.
        yield env.timeout(max(t0 + 4.0 - env.now, 0.0))
        return True

    try:
        assert world.run_to_completion(scenario()) is True
        succeeded = True
    except ReproError:
        # A typed, explainable failure is an acceptable cell outcome —
        # silent hangs and corruption are not.
        succeeded = False
        world.run_to_completion(_settle(env, t0))
    # Whatever happened to the in-flight op, stored files are intact.
    world.audit_storage()
    # Every cell must actually have injected its fault.
    assert ctrl.firings, "fault plan never fired"
    if kind in ("net.partition", "server.crash"):
        # These cells exist to exercise retry/backoff: the operation
        # must have come through after the fault cleared.
        assert succeeded
        assert world.client.retrier.retries > 0


def _settle(env, t0):
    yield env.timeout(max(t0 + 4.0 - env.now, 0.0))
    return True


@pytest.mark.parametrize("seed", SEEDS)
def test_create_retry_is_deduplicated_by_txid(seed):
    """A CREATE whose reply is lost to a loss window must not create the
    file twice: the pre-assigned txid turns the client's retries into
    reply-replays at the server."""
    world = World(seed)
    env = world.env
    t0 = env.now
    world.controller(
        FaultPlan().net_loss(at=t0 + 0.05, duration=1.5, probability=0.6)
    ).start()
    live_before = world.bullet.table.live_count

    def scenario():
        yield env.timeout(0.1)
        payload = b"exactly-once " * 100
        cap = yield from world.client.create(payload, 1)
        world.expected[cap] = payload
        yield env.timeout(max(t0 + 4.0 - env.now, 0.0))
        return True

    assert world.run_to_completion(scenario()) is True
    assert world.bullet.table.live_count == live_before + 1
    world.audit_storage()


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_mid_create_recovers_consistently(seed):
    """The P-FACTOR x mid-CREATE crash corner: the server is killed while
    a large CREATE is being served. The client's deduped retry re-runs
    the transaction against the rebooted server (its reply cache died
    with it); the half-written first attempt is at worst an unreferenced
    extent, which the startup scan and GC story absorb — never an inode
    pointing at garbage."""
    world = World(seed)
    env = world.env
    t0 = env.now
    # Crash very shortly after the CREATE request lands, then restart.
    world.controller(
        FaultPlan().server_crash("bullet", at=t0 + 0.13)
                   .server_restart("bullet", at=t0 + 1.0)
    ).start()

    def scenario():
        yield env.timeout(0.1)
        payload = b"big enough to be mid-flight " * 2000
        cap = yield from world.client.create(payload, 1)
        world.expected[cap] = payload
        data = yield from world.client.read(cap)
        assert data == payload
        yield env.timeout(max(t0 + 4.0 - env.now, 0.0))
        return True

    assert world.run_to_completion(scenario()) is True
    reborn = world.audit_storage()
    # The startup scan repaired/accounted everything it found.
    reborn.disk_free.check_invariants()


@pytest.mark.parametrize("seed", SEEDS)
def test_directory_lookup_retries_through_partition(seed):
    """The directory client shares the retry plane: a lookup issued into
    a partition window succeeds once the network heals."""
    env = Environment()
    tracer = Tracer(env, categories={"fault", "retry"})
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           transport=rpc, max_directories=8)
    dirs.format()
    run_process(env, dirs.boot())
    names = DirectoryClient(
        env, rpc, default_port=dirs.port, timeout=0.5, retry=RETRY,
        retry_stream=SeededStream(seed, "dir-retry"), tracer=tracer,
    )
    root = run_process(env, names.create_directory())
    file_cap = run_process(env, bullet.create(b"named bytes", 1))
    run_process(env, names.append(root, "f", file_cap))

    t0 = env.now
    ctrl = FaultController(env, FaultPlan().net_partition(at=t0 + 0.05,
                                                          duration=1.5),
                           master_seed=seed, tracer=tracer)
    ctrl.attach_ethernet("net", eth).start()

    def scenario():
        yield env.timeout(0.1)  # inside the partition
        cap = yield from names.lookup(root, "f")
        return cap

    done = env.process(scenario())
    env.run(until=AnyOf(env, [done, env.timeout(CEILING)]))
    assert done.triggered, "directory lookup hung"
    assert done.ok
    assert done.value == file_cap
    assert names.retrier.retries > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_stress_worker_pool_flaky_disk_online_compaction(seed):
    """The three-way stress cell this PR adds: a workers=4 pool serving
    concurrent clients, a flaky extent on the primary disk, and an
    online compaction pass — all at once. The lock plane must keep
    every read intact (failover absorbs the media errors), compaction
    must survive mid-move replica errors by skipping, and the
    reboot-and-checksum audit must find zero quarantined inodes."""
    from repro.core import compact_disk

    world = World(seed, workers=4)
    env = world.env
    bullet = world.bullet
    # Fragment the volume so the pass has real moves to make.
    extra = []
    for i in range(8):
        payload = bytes([0x20 + i]) * (2048 + 256 * i)
        cap = run_process(env, bullet.create(payload, 2))
        extra.append((cap, payload))
    for cap, _payload in extra[::2]:
        run_process(env, bullet.delete(cap))
    for cap, payload in extra[1::2]:
        world.expected[cap] = payload

    t0 = env.now
    ctrl = world.controller(_plan_for(world, "disk.flaky", t0)).start()
    for cap in world.expected:
        bullet.evict(cap.object)  # every client read goes to disk

    done = []

    def client_ops(index):
        stream = SeededStream(seed * 100 + index, "stress")
        items = list(world.expected.items())
        for _step in range(6):
            cap, payload = items[stream.randint(0, len(items) - 1)]
            data = yield from world.client.read(cap)
            assert data == payload
        done.append(index)

    def compaction_mid_fault():
        yield env.timeout(0.15)  # start inside the flaky window
        report = yield from compact_disk(bullet)
        return report

    compaction = env.process(compaction_mid_fault())
    for index in range(4):
        env.process(client_ops(index))

    def scenario():
        yield compaction
        yield env.timeout(max(t0 + 4.0 - env.now, 0.0))
        return True

    assert world.run_to_completion(scenario()) is True
    assert len(done) == 4, "a client hung or died mid-stress"
    assert ctrl.firings, "the flaky window never opened"
    bullet.disk_free.check_invariants()

    # Reboot purely from disk: zero quarantined inodes, every byte back.
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    report = env.run(until=env.process(reborn.boot()))
    assert report.quarantined == []
    for cap, payload in world.expected.items():
        assert run_process(env, reborn.read(cap)) == payload
    reborn.disk_free.check_invariants()
