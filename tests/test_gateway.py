"""Tests for wide-area gateways and the cross-site global name space."""

import pytest

from repro.client import BulletClient, DirectoryClient, LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import NotADirectoryError_, ServerDownError
from repro.net import (
    Ethernet,
    RpcRequest,
    RpcTransport,
    WideAreaLink,
    WideAreaProfile,
    connect_sites,
)
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


def make_site(env, tag):
    """One site: its own Ethernet segment + RPC transport."""
    eth = Ethernet(env, EthernetProfile(name=f"eth-{tag}"))
    return eth, RpcTransport(env, eth, CpuProfile())


def make_two_sites(env, profile=WideAreaProfile()):
    _eth_a, rpc_a = make_site(env, "a")
    _eth_b, rpc_b = make_site(env, "b")
    link = connect_sites(env, rpc_a, rpc_b, profile)
    return rpc_a, rpc_b, link


def add_directory(env, rpc, bullet, name):
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name=f"{name}-dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           name=name, transport=rpc)
    dirs.format()
    run_process(env, dirs.boot())
    return dirs


# ------------------------------------------------------------ raw link


def test_link_charges_serialization_and_propagation(env):
    link = WideAreaLink(env, WideAreaProfile(bandwidth_bits=1e6,
                                             propagation_delay=0.05,
                                             per_packet_overhead=0.0))

    def proc():
        yield env.process(link.transfer(12500, 0))  # 0.1 s serialization
        return env.now

    elapsed = run_process(env, proc())
    assert elapsed == pytest.approx(0.15)
    assert link.bytes_carried == 12500


def test_link_directions_independent(env):
    """Full duplex: opposite directions do not serialize each other."""
    link = WideAreaLink(env, WideAreaProfile(bandwidth_bits=1e6,
                                             propagation_delay=0.0,
                                             per_packet_overhead=0.0))
    done = []

    def sender(direction):
        yield env.process(link.transfer(125000, direction))  # 1 s each
        done.append(env.now)

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    assert max(done) == pytest.approx(1.0)


def test_link_same_direction_serializes(env):
    link = WideAreaLink(env, WideAreaProfile(bandwidth_bits=1e6,
                                             propagation_delay=0.0,
                                             per_packet_overhead=0.0))
    done = []

    def sender():
        yield env.process(link.transfer(125000, 0))
        done.append(env.now)

    env.process(sender())
    env.process(sender())
    env.run()
    assert max(done) == pytest.approx(2.0)


# -------------------------------------------------------- forwarded RPC


def test_remote_bullet_access_through_gateway(env):
    rpc_a, rpc_b, link = make_two_sites(env)
    bullet_b = make_bullet(env, transport=rpc_b)  # server lives at site B
    client_at_a = BulletClient(env, rpc_a, bullet_b.port)

    cap = run_process(env, client_at_a.create(b"stored across the border", 2))
    assert run_process(env, client_at_a.read(cap)) == b"stored across the border"
    assert link.bytes_carried > 0


def test_gateway_latency_visible(env):
    """The same read is slower from the remote site by at least two
    one-way propagation delays."""
    rpc_a, rpc_b, _link = make_two_sites(
        env, WideAreaProfile(propagation_delay=0.05))
    bullet_b = make_bullet(env, transport=rpc_b)
    remote_client = BulletClient(env, rpc_a, bullet_b.port)
    local_client = BulletClient(env, rpc_b, bullet_b.port)

    cap = run_process(env, local_client.create(b"x" * 100, 1))

    t0 = env.now
    run_process(env, local_client.read(cap))
    local_delay = env.now - t0

    t0 = env.now
    run_process(env, remote_client.read(cap))
    remote_delay = env.now - t0
    assert remote_delay > local_delay + 0.1  # 2 x 50 ms propagation


def test_unknown_port_still_fails_with_gateways(env):
    rpc_a, _rpc_b, _link = make_two_sites(env)

    def proc():
        try:
            yield env.process(rpc_a.trans(0xDEAD, RpcRequest(opcode=1),
                                          timeout=0.2))
        except ServerDownError:
            return "down"

    assert run_process(env, proc()) == "down"


def test_local_port_preferred_over_gateway(env):
    """A port served locally is never forwarded."""
    rpc_a, rpc_b, link = make_two_sites(env)
    bullet_a = make_bullet(env, transport=rpc_a)
    client = BulletClient(env, rpc_a, bullet_a.port)
    cap = run_process(env, client.create(b"local", 1))
    run_process(env, client.read(cap))
    assert link.bytes_carried == 0


# ------------------------------------------------- global name space


def test_single_global_namespace_across_sites(env):
    """§2.1: 'one single large file service that crosses international
    borders' — a path rooted at site A resolves through a directory at
    site B to a file stored at site B."""
    rpc_a, rpc_b, _link = make_two_sites(env)
    bullet_a = make_bullet(env, transport=rpc_a)
    bullet_b = make_bullet(env, transport=rpc_b)
    dirs_a = add_directory(env, rpc_a, bullet_a, "dir-amsterdam")
    dirs_b = add_directory(env, rpc_b, bullet_b, "dir-berlin")

    client = DirectoryClient(env, rpc_a, default_port=dirs_a.port)
    bullet_client_b = BulletClient(env, rpc_a, bullet_b.port)  # via gateway

    root = run_process(env, client.create_directory())
    berlin_dir = run_process(env, client.create_directory(port=dirs_b.port))
    run_process(env, client.append(root, "berlin", berlin_dir))
    remote_file = run_process(env, bullet_client_b.create(b"guten tag", 1))
    run_process(env, client.append(berlin_dir, "greeting", remote_file))

    found = run_process(env, client.walk(root, "berlin/greeting"))
    assert found == remote_file
    # Read it from site A through the transparent route:
    data = run_process(env, BulletClient(env, rpc_a, found.port).read(found))
    assert data == b"guten tag"


def test_walk_dir_ports_guard(env):
    rpc_a, rpc_b, _link = make_two_sites(env)
    bullet_a = make_bullet(env, transport=rpc_a)
    dirs_a = add_directory(env, rpc_a, bullet_a, "dir-a")
    client = DirectoryClient(env, rpc_a, default_port=dirs_a.port)
    bullet_client = BulletClient(env, rpc_a, bullet_a.port)

    root = run_process(env, client.create_directory())
    file_cap = run_process(env, bullet_client.create(b"not a dir", 1))
    run_process(env, client.append(root, "f", file_cap))
    with pytest.raises(NotADirectoryError_):
        run_process(env, client.walk(root, "f/deeper", dir_ports={dirs_a.port}))


def test_directory_client_full_surface(env):
    rpc_a, _rpc_b, _link = make_two_sites(env)
    bullet = make_bullet(env, transport=rpc_a)
    dirs = add_directory(env, rpc_a, bullet, "dir-x")
    client = DirectoryClient(env, rpc_a, default_port=dirs.port)
    bullet_client = BulletClient(env, rpc_a, bullet.port)

    root = run_process(env, client.create_directory())
    v1 = run_process(env, bullet_client.create(b"v1", 1))
    v2 = run_process(env, bullet_client.create(b"v2", 1))
    run_process(env, client.append(root, "doc", v1))
    assert run_process(env, client.list_names(root)) == ["doc"]
    assert run_process(env, client.replace(root, "doc", v2)) == v1
    assert run_process(env, client.lookup(root, "doc")) == v2
    assert len(run_process(env, client.history(root))) == 3
    assert run_process(env, client.remove_entry(root, "doc")) == v2
    run_process(env, client.delete_directory(root))
