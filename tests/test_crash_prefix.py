"""Crash-prefix consistency of the directory server.

Every mutation is: (1) create the new version file on the Bullet server
(durable), (2) overwrite one slot block on the directory disk. The slot
write is the commit point, so if the directory disk dies after K slot
writes, a reboot must show exactly the first K mutations — never a torn
or reordered state. Hypothesis sweeps the crash point."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client import LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import FaultInjector, VirtualDisk
from repro.errors import DiskIOError, ReproError
from repro.sim import Environment, run_process

from conftest import SMALL_DISK, make_bullet, small_testbed


@given(
    n_mutations=st.integers(min_value=1, max_value=10),
    crash_after=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_directory_crash_shows_exact_mutation_prefix(n_mutations, crash_after):
    env = Environment()
    bullet = make_bullet(env, testbed=small_testbed(inode_count=2048))
    dir_disk = VirtualDisk(env, SMALL_DISK, name="dd")
    dirs = DirectoryServer(env, dir_disk, LocalBulletStub(bullet),
                           small_testbed(), max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    root = run_process(env, dirs.create_directory())  # 1 slot write
    caps = [run_process(env, bullet.create(f"f{i}".encode(), 1))
            for i in range(n_mutations)]

    # Each append costs exactly one directory-disk write; the create of
    # the root cost one too, already done. Crash after `crash_after`
    # further writes.
    FaultInjector(env).fail_after_writes(dir_disk, writes=crash_after)
    applied = 0
    for i, cap in enumerate(caps):
        try:
            run_process(env, dirs.append(root, f"n{i:02d}", cap))
            applied += 1
        except (DiskIOError, ReproError):
            break

    # Let the fault watcher fire (it polls) before repairing, so the
    # repair cannot race it; then boot a fresh server from the disk.
    env.run(until=env.now + 0.1)
    dir_disk.repair()
    reborn = DirectoryServer(env, dir_disk, LocalBulletStub(bullet),
                             small_testbed(), name="directory",
                             max_directories=8)
    env.run(until=env.process(reborn.boot()))
    listing = run_process(env, reborn.list_names(root))

    # The recovered state is exactly a prefix of the mutation sequence:
    # all successfully-committed appends, in order, nothing else.
    assert listing == [f"n{i:02d}" for i in range(len(listing))]
    # And it contains at least the mutations whose commit returned
    # success to the client (durability of acknowledged writes).
    assert len(listing) >= applied
    for i in range(len(listing)):
        assert run_process(env, reborn.lookup(root, f"n{i:02d}")) == caps[i]


def test_status_surfaces(env):
    """std_status on every server kind."""
    from repro.logsvc import LogServer

    bullet = make_bullet(env)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    run_process(env, dirs.create_directory())
    assert dirs.status()["directories"] == 1
    assert dirs.status()["free_slots"] == 7

    logs = LogServer(env, VirtualDisk(env, SMALL_DISK, name="ld"),
                     small_testbed(), max_logs=4)
    logs.format()
    env.run(until=env.process(logs.boot()))
    cap = run_process(env, logs.create_log())
    run_process(env, logs.append(cap, b"r"))
    status = logs.status()
    assert status["logs"] == 1
    assert status["records"] == 1
