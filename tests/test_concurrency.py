"""Concurrency stress tests: many clients interleaving over the RPC
plane against single-threaded servers, then invariant + durability
checks. These exercise the interleavings a single client never
produces (P-FACTOR 0 background writes racing deletes and reallocation,
cache eviction under parallel load, directory mutation ordering)."""

import pytest

from repro.client import BulletClient, DirectoryClient, LocalBulletStub
from repro.core import BulletServer
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import NoSpaceError, ReproError
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, SeededStream, run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


def make_rpc_world(env, inode_count=2048, **server_kwargs):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc,
                         testbed=small_testbed(inode_count=inode_count),
                         **server_kwargs)
    return rpc, bullet


def check_bullet_invariants(bullet):
    bullet.disk_free.check_invariants()
    bullet.cache.check_invariants()
    used = 0
    for number, inode in bullet.table.live_inodes():
        blocks = bullet.layout.blocks_for(inode.size)
        used += blocks
        if blocks:
            assert not bullet.disk_free.is_free(inode.start_block, blocks)
    assert used == bullet.disk_free.used_units


def test_many_clients_mixed_ops_preserve_invariants(env):
    rpc, bullet = make_rpc_world(env)
    client = BulletClient(env, rpc, bullet.port)
    n_clients = 8
    surviving: dict = {}
    errors: list = []

    def worker(index):
        stream = SeededStream(100 + index, "ops")
        mine: list = []  # (cap, payload)
        for step in range(30):
            roll = stream.random()
            if roll < 0.5 or not mine:
                size = int(stream.lognormal_bounded(2 * KB, 1.2, 1, 16 * KB))
                payload = bytes([index]) * size
                p = stream.choice([0, 1, 2])
                try:
                    cap = yield from client.create(payload, p)
                except (NoSpaceError, ReproError) as exc:
                    errors.append(exc)
                    continue
                mine.append((cap, payload))
            elif roll < 0.8:
                cap, payload = mine[stream.randint(0, len(mine) - 1)]
                data = yield from client.read(cap)
                assert data == payload, f"client {index} read corruption"
            else:
                cap, _payload = mine.pop(stream.randint(0, len(mine) - 1))
                yield from client.delete(cap)
        for cap, payload in mine:
            surviving[cap] = payload

    for index in range(n_clients):
        env.process(worker(index))
    env.run()
    assert not errors, errors
    check_bullet_invariants(bullet)
    assert bullet.table.live_count == len(surviving)

    # Durability: reboot purely from disk; every surviving file intact.
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    report = env.run(until=env.process(reborn.boot()))
    assert report.live_files == len(surviving)
    for cap, payload in surviving.items():
        assert run_process(env, reborn.read(cap)) == payload
    check_bullet_invariants(reborn)


def test_p0_create_delete_reallocate_race(env):
    """P-FACTOR 0 replies before the disk writes; an immediate delete
    frees the extent, and a new create may reuse it. FIFO disk queues
    must make the final on-disk state match the final logical state."""
    rpc, bullet = make_rpc_world(env)
    client = BulletClient(env, rpc, bullet.port)

    def scenario():
        caps = []
        for round_number in range(10):
            cap = yield from client.create(b"A" * 8 * KB, 0)
            yield from client.delete(cap)
            cap2 = yield from client.create(bytes([round_number]) * 8 * KB, 0)
            caps.append((round_number, cap2))
        return caps

    caps = run_process(env, scenario())
    env.run()  # drain every background write
    check_bullet_invariants(bullet)
    bullet.crash()
    reborn = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet")
    env.run(until=env.process(reborn.boot()))
    for round_number, cap in caps:
        assert run_process(env, reborn.read(cap)) == bytes([round_number]) * 8 * KB


def test_cache_thrash_under_parallel_load(env):
    """Working set far beyond the cache, parallel readers: every read
    still returns the right bytes and the cache invariants hold."""
    rpc, bullet = make_rpc_world(env)
    client = BulletClient(env, rpc, bullet.port)
    # 2 MB cache; 16 files x 384 KB = 6 MB working set.
    files = []
    for i in range(16):
        payload = bytes([i]) * (384 * KB)
        cap = run_process(env, client.create(payload, 1))
        files.append((cap, payload))
    done = []

    def reader(index):
        stream = SeededStream(index, "reads")
        for _ in range(8):
            cap, payload = files[stream.randint(0, len(files) - 1)]
            data = yield from client.read(cap)
            assert data == payload
        done.append(index)

    for index in range(6):
        env.process(reader(index))
    env.run()
    assert len(done) == 6
    assert bullet.cache.stats.evictions > 0
    check_bullet_invariants(bullet)


def test_directory_concurrent_appends_all_land(env):
    rpc, bullet = make_rpc_world(env)
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           transport=rpc, max_directories=8)
    dirs.format()
    run_process(env, dirs.boot())
    names = DirectoryClient(env, rpc, default_port=dirs.port)
    bullet_client = BulletClient(env, rpc, bullet.port)
    root = run_process(env, names.create_directory())

    def binder(index):
        cap = yield from bullet_client.create(bytes([index]), 1)
        yield from names.append(root, f"file-{index:02d}", cap)

    for index in range(12):
        env.process(binder(index))
    env.run()
    listing = run_process(env, names.list_names(root))
    assert listing == [f"file-{i:02d}" for i in range(12)]
    # The version chain recorded every step.
    history = run_process(env, names.history(root))
    assert len(history) >= 13


def test_server_remains_responsive_during_large_transfer(env):
    """A 1 MB read occupies the single-threaded server; a tiny read
    issued meanwhile completes after it, not never. (Pinned to
    workers=1: head-of-line blocking IS the paper's semantics here.)"""
    rpc, bullet = make_rpc_world(env, workers=1)
    client = BulletClient(env, rpc, bullet.port)
    big = run_process(env, client.create(bytes(1024 * KB), 1))
    small = run_process(env, client.create(b"quick", 1))
    finish = {}

    def big_reader():
        yield from client.read(big)
        finish["big"] = env.now

    def small_reader():
        yield env.timeout(1e-4)  # arrive while the big read is in service
        yield from client.read(small)
        finish["small"] = env.now

    env.process(big_reader())
    env.process(small_reader())
    env.run()
    assert finish["small"] > 0
    # Single-threaded service: the small read waited for the big one.
    assert finish["small"] >= finish["big"] * 0.9
