"""Tests for the NFS client page/attribute cache — the machinery the
paper disabled with lockf, including its weak-consistency window."""

import pytest

from repro.nfs import NfsClient, NfsServer
from repro.disk import VirtualDisk
from repro.sim import Environment, run_process
from repro.units import KB

from conftest import SMALL_DISK, small_testbed


def make_pair(env, caching=True):
    disk = VirtualDisk(env, SMALL_DISK, name="nfsdisk")
    server = NfsServer(env, disk, small_testbed())
    server.format()
    run_process(env, server.boot())
    client = NfsClient(env, small_testbed(), server=server,
                       client_caching=caching)
    return client, server


def write_file(env, client, path, payload):
    def gen():
        fd = yield from client.creat(path)
        yield from client.write(fd, payload)
        yield from client.close(fd)

    run_process(env, gen())


def read_file(env, client, path, size):
    def gen():
        fd = yield from client.open(path)
        yield from client.lseek(fd, 0)
        data = yield from client.read(fd, size)
        yield from client.close(fd)
        return data

    return run_process(env, gen())


def test_cached_reread_is_local(env):
    client, server = make_pair(env)
    payload = bytes(range(256)) * 64  # 16 KB
    write_file(env, client, "/f", payload)
    assert read_file(env, client, "/f", len(payload)) == payload
    reads_at_server = server.fs.cache.stats  # server-side state
    misses_before = client.cache_misses
    t0 = env.now
    assert read_file(env, client, "/f", len(payload)) == payload
    # Second read: all chunks from the client cache, no READ RPCs.
    assert client.cache_misses == misses_before
    assert client.cache_hits >= 2


def test_cached_reread_faster(env):
    client, _server = make_pair(env)
    payload = bytes(64 * KB)
    write_file(env, client, "/f", payload)

    def timed_read():
        t0 = env.now
        assert read_file(env, client, "/f", len(payload)) == payload
        return env.now - t0

    cold = timed_read()
    warm = timed_read()
    assert warm < cold / 3


def test_unaligned_reads_from_cache(env):
    client, _server = make_pair(env)
    payload = bytes(range(256)) * 80  # 20 KB, crosses chunk boundaries
    write_file(env, client, "/f", payload)
    read_file(env, client, "/f", len(payload))  # warm

    def gen():
        fd = yield from client.open("/f")
        yield from client.lseek(fd, 8000)
        return (yield from client.read(fd, 9000))

    assert run_process(env, gen()) == payload[8000:17000]


def test_own_write_invalidates_pages(env):
    client, _server = make_pair(env)
    write_file(env, client, "/f", b"A" * (10 * KB))
    assert read_file(env, client, "/f", 10 * KB) == b"A" * (10 * KB)

    def rewrite():
        fd = yield from client.open("/f")
        yield from client.lseek(fd, 0)
        yield from client.write(fd, b"B" * 100)
        yield from client.close(fd)

    run_process(env, rewrite())
    data = read_file(env, client, "/f", 10 * KB)
    assert data[:100] == b"B" * 100
    assert data[100:] == b"A" * (10 * KB - 100)


def test_stale_window_then_revalidation(env):
    """The §5 contrast: another client's update is invisible until the
    attribute cache times out — NFS's weak consistency, which immutable
    files never suffer."""
    env_local = env
    disk = VirtualDisk(env_local, SMALL_DISK, name="nfsdisk")
    server = NfsServer(env_local, disk, small_testbed())
    server.format()
    run_process(env_local, server.boot())
    reader = NfsClient(env_local, small_testbed(), server=server,
                       client_caching=True)
    writer = NfsClient(env_local, small_testbed(), server=server)

    write_file(env_local, writer, "/shared", b"version one....")
    assert read_file(env_local, reader, "/shared", 64) == b"version one...."

    # Another client rewrites the file.
    def rewrite():
        fd = yield from writer.open("/shared")
        yield from writer.lseek(fd, 0)
        yield from writer.write(fd, b"version TWO!...")
        yield from writer.close(fd)

    run_process(env_local, rewrite())

    # Within the attribute-cache window the reader sees STALE data.
    stale = read_file(env_local, reader, "/shared", 64)
    assert stale == b"version one...."

    # After the window expires, revalidation flushes and fetches fresh.
    env_local.run(until=env_local.now + small_testbed().nfs.attr_cache_timeout + 0.1)
    fresh = read_file(env_local, reader, "/shared", 64)
    assert fresh == b"version TWO!..."


def test_lockf_mode_has_no_cache(env):
    client, _server = make_pair(env, caching=False)
    payload = bytes(16 * KB)
    write_file(env, client, "/f", payload)
    read_file(env, client, "/f", len(payload))
    read_file(env, client, "/f", len(payload))
    assert client.cache_hits == 0
    assert client.cache_misses == 0
