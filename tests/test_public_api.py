"""Acceptance tests for the public surface: the README quickstart runs
verbatim, every exported name is importable and documented, and the five
headline claims hold at reduced scale in one sitting."""

import pytest

import repro
from repro import (
    BulletClient,
    BulletServer,
    DEFAULT_TESTBED,
    Environment,
    Ethernet,
    MirroredDiskSet,
    RIGHT_READ,
    RpcTransport,
    VirtualDisk,
    restrict,
    run_process,
)
from repro.units import KB


def test_readme_quickstart_verbatim():
    """The exact code block from README.md."""
    env = Environment()
    ethernet = Ethernet(env, DEFAULT_TESTBED.ethernet)
    rpc = RpcTransport(env, ethernet, DEFAULT_TESTBED.cpu)
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}") for i in (0, 1)]
    server = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          transport=rpc)
    server.format()
    run_process(env, server.boot())

    client = BulletClient(env, rpc, server.port)
    cap = run_process(env, client.create(b"immutable, contiguous, whole-file", 2))
    assert run_process(env, client.read(cap)) == b"immutable, contiguous, whole-file"
    reader = restrict(cap, RIGHT_READ)
    assert env.now > 0
    assert reader.rights == RIGHT_READ


def test_every_exported_name_resolves_and_is_documented():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, type(repro.Status.OK)):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


def test_module_docstring_mentions_the_paper():
    assert "ICDCS 1989" in repro.__doc__
    assert "High-Performance File" in repro.__doc__


def test_version():
    assert repro.__version__ == "1.0.0"


def test_claims_end_to_end_small_scale():
    """All five §4/§5 claims in one sitting on the full testbed with a
    reduced size set — the cheap always-on guard behind the benchmark
    suite's strict version."""
    from repro.bench import bullet_figure2, make_rig, nfs_figure3

    rig = make_rig()
    sizes = [1 * KB, 64 * KB, 256 * KB]
    fig2 = bullet_figure2(rig, sizes=sizes, repeats=1)
    fig3 = nfs_figure3(rig, sizes=sizes, repeats=1)

    # C1-direction: Bullet faster at every size.
    for size in sizes:
        assert fig3.delay(size, "READ") > 2 * fig2.delay(size, "READ")
    # C3: write bandwidth beats NFS read bandwidth at 64 KB+.
    for size in (64 * KB, 256 * KB):
        assert (fig2.bandwidth(size, "CREATE+DEL")
                > fig3.bandwidth(size, "READ"))
    # C5: Bullet large-read bandwidth near the wire's bulk-RPC rate.
    assert fig2.bandwidth(256 * KB, "READ") > 500
