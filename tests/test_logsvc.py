"""Tests for the append-optimized log server."""

import pytest

from repro.capability import Capability, RIGHT_CREATE, RIGHT_READ, restrict
from repro.disk import VirtualDisk
from repro.errors import BadRequestError, NotFoundError, RightsError
from repro.logsvc import LogServer
from repro.sim import Environment, run_process

from conftest import SMALL_DISK, small_testbed


def make_log_server(env, name="logsvc", max_logs=8):
    disk = VirtualDisk(env, SMALL_DISK, name=f"{name}-disk")
    server = LogServer(env, disk, small_testbed(), name=name, max_logs=max_logs)
    server.format()
    env.run(until=env.process(server.boot()))
    return server


def test_create_append_read(env):
    logs = make_log_server(env)
    cap = run_process(env, logs.create_log())
    assert run_process(env, logs.append(cap, b"line 1")) == 0
    assert run_process(env, logs.append(cap, b"line 2")) == 1
    assert run_process(env, logs.read(cap)) == [b"line 1", b"line 2"]
    assert run_process(env, logs.length(cap)) == 2


def test_read_from_sequence(env):
    logs = make_log_server(env)
    cap = run_process(env, logs.create_log())
    for i in range(5):
        run_process(env, logs.append(cap, f"r{i}".encode()))
    assert run_process(env, logs.read(cap, from_seq=3)) == [b"r3", b"r4"]
    assert run_process(env, logs.read(cap, from_seq=1, limit=2)) == [b"r1", b"r2"]


def test_append_cost_independent_of_length(env):
    """The whole point: appending to a long log costs no more than
    appending to a short one (amortized over block boundaries)."""
    logs = make_log_server(env)
    cap = run_process(env, logs.create_log())

    def timed_append():
        t0 = env.now
        run_process(env, logs.append(cap, b"x" * 50))
        return env.now - t0

    early = sum(timed_append() for _ in range(20)) / 20
    for _ in range(400):
        run_process(env, logs.append(cap, b"x" * 50))
    late = sum(timed_append() for _ in range(20)) / 20
    assert late < 2 * early


def test_records_spanning_blocks(env):
    """Fill several blocks and verify the chain decodes correctly."""
    logs = make_log_server(env)
    cap = run_process(env, logs.create_log())
    records = [bytes([i % 256]) * 100 for i in range(30)]  # > 1 block
    for record in records:
        run_process(env, logs.append(cap, record))
    assert run_process(env, logs.read(cap)) == records


def test_record_size_limit(env):
    logs = make_log_server(env)
    cap = run_process(env, logs.create_log())
    run_process(env, logs.append(cap, bytes(logs.max_record)))  # exactly fits
    with pytest.raises(BadRequestError):
        run_process(env, logs.append(cap, bytes(logs.max_record + 1)))


def test_rights_enforced(env):
    logs = make_log_server(env)
    owner = run_process(env, logs.create_log())
    reader = restrict(owner, RIGHT_READ)
    with pytest.raises(RightsError):
        run_process(env, logs.append(reader, b"nope"))
    appender = restrict(owner, RIGHT_CREATE)
    run_process(env, logs.append(restrict(owner, RIGHT_CREATE | RIGHT_READ), b"ok"))
    with pytest.raises(RightsError):
        run_process(env, logs.read(appender))


def test_unknown_log_rejected(env):
    logs = make_log_server(env)
    bogus = Capability(port=logs.port, object=5, rights=0xFF, check=1)
    with pytest.raises(NotFoundError):
        run_process(env, logs.read(bogus))


def test_log_survives_reboot(env):
    logs = make_log_server(env)
    cap = run_process(env, logs.create_log())
    records = [f"persistent {i}".encode() for i in range(40)]
    for record in records:
        run_process(env, logs.append(cap, record))
    reborn = LogServer(env, logs.disk, small_testbed(), name="logsvc")
    count = env.run(until=env.process(reborn.boot()))
    assert count == 1
    cap2 = Capability(port=reborn.port, object=cap.object,
                      rights=cap.rights, check=cap.check)
    assert run_process(env, reborn.read(cap2)) == records
    # And appending continues where it left off.
    assert run_process(env, reborn.append(cap2, b"after reboot")) == 40


def test_multiple_logs_isolated(env):
    logs = make_log_server(env)
    a = run_process(env, logs.create_log())
    b = run_process(env, logs.create_log())
    run_process(env, logs.append(a, b"for a"))
    run_process(env, logs.append(b, b"for b"))
    assert run_process(env, logs.read(a)) == [b"for a"]
    assert run_process(env, logs.read(b)) == [b"for b"]


def test_log_table_exhaustion(env):
    logs = make_log_server(env, max_logs=2)
    run_process(env, logs.create_log())
    run_process(env, logs.create_log())
    with pytest.raises(BadRequestError):
        run_process(env, logs.create_log())
