"""Tests for packet loss and RPC retransmission with at-most-once
execution semantics."""

import pytest
from dataclasses import replace

from repro.client import BulletClient
from repro.errors import RpcTimeoutError
from repro.net import Ethernet, RpcReply, RpcRequest, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, SeededStream, run_process
from repro.units import KB

from conftest import make_bullet


def make_lossy_net(env, loss, seed=21):
    profile = replace(EthernetProfile(), loss_probability=loss)
    eth = Ethernet(env, profile, stream=SeededStream(seed, "eth"))
    rpc = RpcTransport(env, eth, CpuProfile())
    rpc.retransmit_interval = 0.05  # keep tests quick
    return eth, rpc


def counting_server(env, rpc, port=100):
    """Echo server that counts how many times it *executed* a request."""
    endpoint = rpc.register(port)
    executions = []

    def loop():
        while True:
            req = yield endpoint.getreq()
            executions.append(req.txid)
            yield env.process(endpoint.putrep(req, RpcReply(body=req.body)))

    env.process(loop())
    return executions


def test_loss_requires_stream():
    env = Environment()
    with pytest.raises(ValueError):
        Ethernet(env, replace(EthernetProfile(), loss_probability=0.1))


def test_lossy_send_reports_delivery():
    env = Environment()
    eth, _ = make_lossy_net(env, loss=0.5, seed=3)

    def proc():
        outcomes = []
        for _ in range(40):
            outcomes.append((yield env.process(eth.send_message(100))))
        return outcomes

    outcomes = run_process(env, proc())
    assert any(outcomes) and not all(outcomes)
    assert eth.stats.lost_packets > 0


def test_rpc_succeeds_despite_loss():
    env = Environment()
    eth, rpc = make_lossy_net(env, loss=0.25, seed=11)
    executions = counting_server(env, rpc)

    def client():
        replies = []
        for i in range(20):
            reply = yield env.process(
                rpc.trans(100, RpcRequest(opcode=1, body=bytes([i])))
            )
            replies.append(reply.body)
        return replies

    replies = run_process(env, client())
    assert replies == [bytes([i]) for i in range(20)]
    # Losses definitely happened; retransmissions recovered them.
    assert eth.stats.lost_packets > 0
    assert rpc.stats_retransmits > 0


def test_at_most_once_execution():
    """Whatever the wire does, the server executes each transaction
    exactly once (duplicates are answered from the reply cache)."""
    env = Environment()
    eth, rpc = make_lossy_net(env, loss=0.35, seed=17)
    executions = counting_server(env, rpc)

    def client():
        for i in range(15):
            yield env.process(rpc.trans(100, RpcRequest(opcode=1, body=b"x")))

    run_process(env, client())
    assert len(executions) == 15
    assert len(set(executions)) == 15  # every txid served exactly once
    assert rpc.stats_retransmits > 0


def test_total_loss_times_out():
    env = Environment()
    _eth, rpc = make_lossy_net(env, loss=1.0, seed=5)
    counting_server(env, rpc)

    def client():
        try:
            yield env.process(rpc.trans(100, RpcRequest(opcode=1),
                                        timeout=0.3))
        except RpcTimeoutError:
            return "timed out"

    assert run_process(env, client()) == "timed out"


def test_give_up_after_max_retransmits():
    env = Environment()
    _eth, rpc = make_lossy_net(env, loss=1.0, seed=5)
    rpc.max_retransmits = 4
    counting_server(env, rpc)

    def client():
        try:
            yield env.process(rpc.trans(100, RpcRequest(opcode=1)))
        except RpcTimeoutError as exc:
            return str(exc)

    message = run_process(env, client())
    assert "gave up after 4" in message


def test_bullet_ops_end_to_end_on_lossy_network():
    """CREATE is not idempotent — at-most-once matters: under 20% loss,
    20 creates make exactly 20 files."""
    env = Environment()
    eth, rpc = make_lossy_net(env, loss=0.2, seed=29)
    bullet = make_bullet(env, transport=rpc)
    client = BulletClient(env, rpc, bullet.port)

    def scenario():
        caps = []
        for i in range(20):
            caps.append((yield from client.create(bytes([i]) * 100, 1)))
        for i, cap in enumerate(caps):
            assert (yield from client.read(cap)) == bytes([i]) * 100
        return caps

    caps = run_process(env, scenario())
    assert bullet.stats.creates == 20
    assert bullet.table.live_count == 20
    assert eth.stats.lost_packets > 0


def test_selective_retransmission_of_large_messages():
    """A 64-packet request under 5% loss: whole-message retries would
    essentially never complete (0.95^64 ≈ 3.7% per attempt); selective
    fragment retransmission completes in a few rounds, resending only
    what was lost."""
    env = Environment()
    eth, rpc = make_lossy_net(env, loss=0.05, seed=99)
    counting_server(env, rpc)
    body = bytes(90 * KB)

    def client():
        reply = yield env.process(
            rpc.trans(100, RpcRequest(opcode=1, body=body))
        )
        return len(reply.body)

    assert run_process(env, client()) == len(body)
    # Bytes on the wire stay near 2x the payload (request + echoed
    # reply) plus the retransmitted tail — nowhere near the dozens of
    # full copies a whole-message scheme would need.
    assert eth.stats.payload_bytes < 3.0 * len(body)
    assert eth.stats.lost_packets > 0


def test_reply_loss_recovered_by_probe():
    """Force reply losses: the client's header-only probe makes the
    endpoint resend the cached reply; the server executes once."""
    env = Environment()
    eth, rpc = make_lossy_net(env, loss=0.45, seed=1)
    executions = counting_server(env, rpc)

    def client():
        for _ in range(6):
            yield env.process(rpc.trans(100, RpcRequest(opcode=1, body=b"q")))

    run_process(env, client())
    assert len(executions) == 6
    assert len(set(executions)) == 6


def test_loss_is_deterministic():
    def run_once():
        env = Environment()
        eth, rpc = make_lossy_net(env, loss=0.3, seed=41)
        counting_server(env, rpc)

        def client():
            for _ in range(10):
                yield env.process(rpc.trans(100, RpcRequest(opcode=1)))
            return env.now

        return run_process(env, client()), eth.stats.lost_packets

    assert run_once() == run_once()
