"""Fixture: L004 — a guarded field written without holding its lock."""


class Store:
    def __init__(self, locks):
        self.locks = locks
        self._sizes = {}  # repro: guarded_by(locks)

    def locked_write(self, key, size):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            self._sizes[key] = size
        finally:
            self.locks.release(grant)

    def unlocked_write(self, key, size):
        self._sizes[key] = size
