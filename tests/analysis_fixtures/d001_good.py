"""D001 good fixture: simulated components read env.now only."""


def stamp(env):
    return env.now


def elapsed(env, since):
    return env.now - since
