"""Suppression fixture: violations silenced by `# repro: allow(...)`.

The analyzer must report nothing for this file.
"""

import time


def stamp():
    return time.time()  # repro: allow(D001)


def worker(env):
    yield env.timeout(1)


def boot(env):
    # repro: allow(S001)
    env.process(worker(env))
    worker(env)  # repro: allow(S001, D001)
    yield env.timeout(0)
