"""S001 bad fixture: processes created (or not) but never driven."""


def worker(env):
    yield env.timeout(1)


def boot(env):
    worker(env)  # line 9: generator instantiated, never runs
    env.process(worker(env))  # line 10: un-awaited fork
    yield env.timeout(0)


class Server:
    def _serve(self):
        yield self.env.timeout(1)

    def start(self):
        self._serve()  # line 19: method generator never runs
        self.env.process(self._serve())  # line 20: un-awaited fork
