"""A001 good fixture: validation via the ReproError hierarchy."""


class BadRequestError(Exception):
    pass


def check(value):
    if value < 0:
        raise BadRequestError(f"negative value {value}")
    if value > 10:
        raise BadRequestError(f"value {value} exceeds limit 10")
    return value
