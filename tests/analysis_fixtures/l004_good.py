"""Fixture: L004 near-misses — every write path holds the guard: the
writer acquires it, inherits it from all its callers, or receives a
grant parameter."""


class Store:
    def __init__(self, locks):
        self.locks = locks
        self._sizes = {}  # repro: guarded_by(locks)

    def locked_write(self, key, size):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            self._record(key, size)
        finally:
            self.locks.release(grant)

    def _record(self, key, size):
        self._sizes[key] = size

    def grant_write(self, key, size, grant):
        self._sizes[key] = size
