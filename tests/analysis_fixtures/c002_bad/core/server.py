"""C002 bad fixture: a dead opcode and a phantom opcode.

``DELETE`` is declared but never dispatched (dead); ``STAT`` is
dispatched but never declared (missing).
"""

OPCODES = {
    "READ": 1,
    "DELETE": 2,  # line 9: declared, never referenced
}


class Server:
    def _dispatch(self, req):
        if req.opcode == OPCODES["READ"]:
            return b""
        if req.opcode == OPCODES["STAT"]:  # line 17: unknown key
            return {}
        raise ValueError("unknown opcode")
