"""C002 good fixture: declaration and dispatch agree exactly."""

OPCODES = {"READ": 1, "DELETE": 2}


class Server:
    def _dispatch(self, req):
        if req.opcode == OPCODES["READ"]:
            return b""
        if req.opcode == OPCODES["DELETE"]:
            return None
        raise ValueError("unknown opcode")
