"""Fixture: L001 lock-leak — grants that never reliably reach release."""


class Server:
    def __init__(self, locks):
        self.locks = locks

    def discarded(self):
        self.locks.acquire_write(7)

    def happy_path_only(self, key):
        grant = self.locks.acquire_write(key)
        yield grant
        self.mutate(key)
        self.locks.release(grant)

    def never_released(self, key):
        grant = self.locks.acquire_read(key)
        yield grant
        return self.peek(key)
