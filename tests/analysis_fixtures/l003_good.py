"""Fixture: L003 near-miss — nested acquires everywhere, but one
consistent global order (alpha before beta), so the graph is acyclic."""


class Server:
    def __init__(self, alpha, beta):
        self.alpha = alpha
        self.beta = beta

    def copy_extent(self, key):
        a = self.alpha.acquire_write(key)
        try:
            yield a
            b = self.beta.acquire_write(key)
            try:
                yield b
            finally:
                self.beta.release(b)
        finally:
            self.alpha.release(a)

    def compare_extents(self, key):
        a = self.alpha.acquire_read(key)
        try:
            yield a
            b = self.beta.acquire_read(key)
            try:
                yield b
            finally:
                self.beta.release(b)
        finally:
            self.alpha.release(a)
