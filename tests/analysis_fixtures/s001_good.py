"""S001 good fixture: every process is yielded, stored, or delegated."""


def worker(env):
    yield env.timeout(1)


def boot(env):
    yield from worker(env)
    result = yield env.process(worker(env))
    handle = env.process(worker(env))  # stored: caller can await it
    yield handle
    return result
