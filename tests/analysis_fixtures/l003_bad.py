"""Fixture: L003 — two functions nesting two tables in opposite orders."""


class Server:
    def __init__(self, alpha, beta):
        self.alpha = alpha
        self.beta = beta

    def alpha_then_beta(self, key):
        a = self.alpha.acquire_write(key)
        try:
            yield a
            b = self.beta.acquire_write(key)
            try:
                yield b
            finally:
                self.beta.release(b)
        finally:
            self.alpha.release(a)

    def beta_then_alpha(self, key):
        b = self.beta.acquire_write(key)
        try:
            yield b
            a = self.alpha.acquire_write(key)
            try:
                yield a
            finally:
                self.alpha.release(a)
        finally:
            self.beta.release(b)
