"""D002 good fixture: randomness drawn from a seeded stream."""

from repro.sim.rng import SeededStream


def draw(stream: SeededStream):
    return stream.random()


def pick(stream: SeededStream, items):
    return items[stream.randrange(len(items))]
