"""A001 bad fixture: asserts used as runtime validation."""


def check(value):
    assert value >= 0, "negative"  # line 5: stripped under -O
    if value > 10:
        raise AssertionError("too big")  # line 7: assert in disguise
    return value
