"""C001 bad fixture: an opcode handler that never checks rights.

The path ends in ``core/server.py`` so the default server_scope applies.
"""

OPCODES = {"READ": 1, "DELETE": 2}


def require(cap, rights):
    return cap


class Server:
    def read(self, cap):  # line 14: handler, cap param, no require()
        return self.table[cap.object]

    def delete(self, cap):
        require(cap, 2)
        del self.table[cap.object]

    def _dispatch(self, req):
        if req.opcode == OPCODES["READ"]:
            return self.read(req.cap)
        if req.opcode == OPCODES["DELETE"]:
            return self.delete(req.cap)
        raise ValueError("unknown opcode")
