"""D002 bad fixture: process-global randomness."""

import random  # line 3: module import

import os
import uuid


def draw():
    noise = random.random()  # line 10: attribute use
    salt = os.urandom(8)  # line 11: os.urandom
    tag = uuid.uuid4()  # line 12: uuid4
    return noise, salt, tag


def shuffle_from():
    from random import shuffle  # line 17: from-import

    return shuffle
