"""D001 bad fixture: host-clock reads in simulated code."""

import time
from datetime import datetime


def stamp():
    started = time.time()  # line 8: wall-clock read
    return datetime.now(), started  # line 9: wall-clock read
