"""Fixture: L002 yield-under-lock — unbounded waits under a write grant."""


class Server:
    def __init__(self, locks):
        self.locks = locks

    def wait_caller(self, key, done):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            yield done
        finally:
            self.locks.release(grant)

    def wait_mailbox(self, key, inbox):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            request = yield inbox.get()
            self.handle(request)
        finally:
            self.locks.release(grant)

    def park(self, key):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            yield
        finally:
            self.locks.release(grant)
