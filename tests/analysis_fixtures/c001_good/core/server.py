"""C001 good fixture: every cap-taking handler reaches require().

``lookup`` checks transitively (lookup -> read -> _check -> require),
and ``status`` takes no capability so it is exempt.
"""

OPCODES = {"READ": 1, "LOOKUP": 2, "STATUS": 3}


def require(cap, rights):
    return cap


class Server:
    def _check(self, cap):
        return require(cap, 1)

    def read(self, cap):
        self._check(cap)
        return self.table[cap.object]

    def lookup(self, cap, name):
        return self.read(cap)

    def status(self):
        return {"blocks": 0}

    def _dispatch(self, req):
        if req.opcode == OPCODES["READ"]:
            return self.read(req.cap)
        if req.opcode == OPCODES["LOOKUP"]:
            return self.lookup(req.cap, req.args[0])
        if req.opcode == OPCODES["STATUS"]:
            return self.status()
        raise ValueError("unknown opcode")
