"""Fixture: L001 near-misses — every grant is released or handed off."""


class Server:
    def __init__(self, locks):
        self.locks = locks

    def finally_release(self, key):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            self.mutate(key)
        finally:
            self.locks.release(grant)

    def handoff(self, key):
        grant = self.locks.acquire_write(key)
        yield grant
        self.settle(grant)

    def returns_grant(self, key):
        grant = self.locks.acquire_read(key)
        return grant
