"""D003 bad fixture: hash-ordered iteration in replay-core code.

Lives under a ``repro/sim/`` path so the default ordered_scope applies.
"""


class Registry:
    members: set

    def drain(self, ready: set):
        out = []
        for item in ready:  # line 12: annotated set parameter
            out.append(item)
        for item in {3, 1, 2}:  # line 14: set literal
            out.append(item)
        pending = set()
        for item in pending:  # line 17: local assigned set()
            out.append(item)
        for member in self.members:  # line 19: annotated class attribute
            out.append(member)
        return out, list(ready)  # line 21: list(set)
