"""D003 good fixture: deterministic consumption of sets."""


def drain(ready: set, names: "set[str]"):
    ordered = []
    for item in sorted(ready):  # sorted: deterministic
        ordered.append(item)
    for name in names:  # set[str]: exempt by policy
        ordered.append(name)
    total = sum(x for x in ready)  # order-insensitive reduction
    biggest = max(ready)
    return ordered, total, biggest


def route(table: dict):
    for key in table:  # dicts preserve insertion order: exempt
        yield table[key]
