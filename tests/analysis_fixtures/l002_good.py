"""Fixture: L002 near-misses — timed work under the grant, unbounded
waits only after release or under a read grant."""


class Server:
    def __init__(self, locks, env):
        self.locks = locks
        self.env = env

    def timed_work(self, key, data):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
            yield self.env.timeout(len(data))
        finally:
            self.locks.release(grant)

    def wait_after_release(self, key, done):
        grant = self.locks.acquire_write(key)
        try:
            yield grant
        finally:
            self.locks.release(grant)
        yield done

    def read_held(self, key, done):
        grant = self.locks.acquire_read(key)
        try:
            yield grant
            yield done
        finally:
            self.locks.release(grant)
