"""Tests for the whole-file RAM cache (rnodes, LRU, compaction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BulletCache
from repro.errors import BadRequestError, FileTooBigError, NoSpaceError


def make_cache(capacity=1000, rnodes=16, **kw):
    return BulletCache(capacity, rnode_count=rnodes, **kw)


def test_constructor_validation():
    with pytest.raises(BadRequestError):
        BulletCache(0)
    with pytest.raises(BadRequestError):
        BulletCache(100, rnode_count=0)
    with pytest.raises(BadRequestError):
        BulletCache(100, policy="random")


def test_insert_and_lookup():
    cache = make_cache()
    rnode = cache.insert(5, b"file contents")
    assert cache.lookup(5) is rnode
    assert rnode.data == b"file contents"
    assert rnode.size == 13
    assert cache.used_bytes == 13
    assert cache.cached_files == 1


def test_lookup_miss_counts():
    cache = make_cache()
    assert cache.lookup(1) is None
    cache.insert(1, b"x")
    cache.lookup(1)
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5


def test_peek_does_not_count():
    cache = make_cache()
    cache.peek(1)
    assert cache.stats.misses == 0


def test_double_insert_rejected():
    cache = make_cache()
    cache.insert(1, b"a")
    with pytest.raises(BadRequestError):
        cache.insert(1, b"b")


def test_get_slot_resolves_rnode_number():
    cache = make_cache()
    rnode = cache.insert(1, b"abc")
    assert cache.get_slot(rnode.number) is rnode
    with pytest.raises(BadRequestError):
        cache.get_slot(rnode.number + 1)


def test_file_bigger_than_cache_rejected():
    cache = make_cache(capacity=100)
    with pytest.raises(FileTooBigError):
        cache.insert(1, bytes(101))


def test_zero_size_file_cached():
    cache = make_cache()
    rnode = cache.insert(1, b"")
    assert rnode.size == 0
    assert cache.used_bytes == 0
    cache.remove(1)
    cache.check_invariants()


def test_lru_eviction_order():
    cache = make_cache(capacity=100)
    evicted = []
    cache.on_evict = evicted.append
    cache.insert(1, bytes(40))
    cache.insert(2, bytes(40))
    cache.touch(cache.peek(1))  # 1 is now more recent than 2
    cache.insert(3, bytes(40))  # must evict 2, the least recently used
    assert evicted == [2]
    assert cache.peek(1) is not None
    assert cache.peek(2) is None


def test_fifo_eviction_order():
    cache = make_cache(capacity=100, policy="fifo")
    evicted = []
    cache.on_evict = evicted.append
    cache.insert(1, bytes(40))
    cache.insert(2, bytes(40))
    cache.touch(cache.peek(1))  # irrelevant under FIFO
    cache.insert(3, bytes(40))
    assert evicted == [1]


def test_eviction_cascades_until_room():
    cache = make_cache(capacity=100)
    for i in range(4):
        cache.insert(i, bytes(25))
    cache.insert(9, bytes(80))  # needs several evictions
    assert cache.peek(9) is not None
    assert cache.stats.evictions >= 3
    cache.check_invariants()


def test_busy_rnodes_not_evicted():
    cache = make_cache(capacity=100)
    rnode = cache.insert(1, bytes(60))
    rnode.busy = True
    with pytest.raises(NoSpaceError):
        cache.insert(2, bytes(60))
    rnode.busy = False
    cache.insert(2, bytes(60))
    assert cache.peek(1) is None


def test_rnode_slot_exhaustion_evicts():
    cache = make_cache(capacity=1000, rnodes=2)
    cache.insert(1, b"a")
    cache.insert(2, b"b")
    cache.insert(3, b"c")  # slots full: evict LRU first
    assert cache.cached_files == 2
    assert cache.peek(1) is None


def test_remove_frees_space():
    cache = make_cache(capacity=100)
    cache.insert(1, bytes(60))
    cache.remove(1)
    assert cache.used_bytes == 0
    cache.insert(2, bytes(100))  # full capacity available again
    cache.check_invariants()


def test_remove_absent_is_noop():
    cache = make_cache()
    cache.remove(42)  # must not raise


def test_compaction_merges_free_space():
    """Deleting alternating files fragments the arena; a large insert
    must succeed anyway via compaction."""
    cache = make_cache(capacity=100)
    for i in range(4):
        cache.insert(i, bytes(25))
    cache.remove(0)
    cache.remove(2)
    assert cache.free_bytes == 50
    cache.insert(10, bytes(50))  # no contiguous 50-hole without compaction
    assert cache.stats.compactions >= 1
    assert cache.peek(1).data == bytes(25)
    cache.check_invariants()


def test_explicit_compact_moves_files_low():
    cache = make_cache(capacity=100)
    a = cache.insert(1, bytes(30))
    b = cache.insert(2, bytes(30))
    cache.remove(1)
    moved = cache.compact()
    assert moved == 1
    assert cache.peek(2).addr == 0
    cache.check_invariants()


def test_reserve_and_fill():
    cache = make_cache(capacity=100)
    rnode = cache.reserve(1, 40)
    assert rnode.busy
    assert cache.used_bytes == 40
    cache.fill(rnode, bytes(40))
    assert not rnode.busy
    assert cache.peek(1).data == bytes(40)
    cache.check_invariants()


def test_reserve_zero_size():
    cache = make_cache()
    rnode = cache.reserve(1, 0)
    cache.fill(rnode, b"")
    assert cache.peek(1).size == 0


def test_fill_size_mismatch_rejected():
    cache = make_cache()
    rnode = cache.reserve(1, 10)
    with pytest.raises(BadRequestError):
        cache.fill(rnode, bytes(9))


def test_reserve_too_big_rolls_back():
    cache = make_cache(capacity=100)
    with pytest.raises(FileTooBigError):
        cache.reserve(1, 200)
    assert cache.cached_files == 0
    assert cache.used_bytes == 0
    cache.check_invariants()


def test_reserve_evicts_like_insert():
    cache = make_cache(capacity=100)
    cache.insert(1, bytes(80))
    rnode = cache.reserve(2, 80)
    assert cache.peek(1) is None
    cache.fill(rnode, bytes(80))
    cache.check_invariants()


def test_on_evict_callback_gets_inode_number():
    seen = []
    cache = make_cache(capacity=50, on_evict=seen.append)
    cache.insert(7, bytes(40))
    cache.insert(8, bytes(40))
    assert seen == [7]


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "touch", "compact"]),
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=0, max_value=120),
        ),
        max_size=80,
    )
)
@settings(max_examples=150)
def test_cache_invariants_under_random_workload(script):
    """Property: any interleaving of inserts, removes, touches and
    compactions preserves the arena/rnode invariants, and cached data is
    never corrupted."""
    cache = make_cache(capacity=300, rnodes=8)
    contents: dict[int, bytes] = {}
    cache.on_evict = lambda n: contents.pop(n, None)
    for op, key, size in script:
        if op == "insert" and key not in contents:
            data = bytes([key]) * size
            try:
                cache.insert(key, data)
            except (FileTooBigError, NoSpaceError):
                continue
            contents[key] = data
        elif op == "remove":
            cache.remove(key)
            contents.pop(key, None)
        elif op == "touch":
            rnode = cache.peek(key)
            if rnode is not None:
                cache.touch(rnode)
        elif op == "compact":
            cache.compact()
        cache.check_invariants()
        for inode_number, expected in contents.items():
            rnode = cache.peek(inode_number)
            assert rnode is not None, "tracked file vanished without on_evict"
            assert rnode.data == expected


def test_rnode_exhaustion_all_busy_raises():
    cache = make_cache(capacity=1000, rnodes=2)
    cache.insert(1, b"a").busy = True
    cache.insert(2, b"b").busy = True
    with pytest.raises(NoSpaceError):
        cache.insert(3, b"c")
    cache.check_invariants()


def test_pinned_rnode_is_not_evictable():
    """A pin holds the arena extent across a timed transfer: eviction
    pressure must skip pinned files (and fail if nothing else can go)."""
    from repro.errors import ConsistencyError

    cache = make_cache(capacity=100, rnodes=4)
    rnode = cache.insert(1, b"x" * 60)
    cache.pin(rnode)
    with pytest.raises(NoSpaceError):
        cache.insert(2, b"y" * 60)  # only eviction candidate is pinned
    cache.unpin(rnode)
    cache.insert(2, b"y" * 60)  # now 1 is evictable
    assert cache.peek(1) is None
    assert cache.peek(2) is not None
    cache.check_invariants()


def test_release_while_pinned_is_a_consistency_error():
    """Freeing a file some transfer is still copying is exactly the
    torn-read race the lock plane prevents — fail loudly, never tear."""
    from repro.errors import ConsistencyError

    cache = make_cache()
    rnode = cache.insert(1, b"abc")
    cache.pin(rnode)
    cache.pin(rnode)  # pins nest (two overlapping reads of one file)
    cache.unpin(rnode)
    with pytest.raises(ConsistencyError):
        cache.remove(1)
    cache.unpin(rnode)
    cache.remove(1)
    with pytest.raises(ConsistencyError):
        cache.unpin(rnode)  # no pins left to drop
