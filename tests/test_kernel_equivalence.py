"""Reference-equivalence of the kernel fast paths (property-based).

The fast kernel (``Environment(fast=True)``) is only allowed to exist
because it is *observationally identical* to the reference kernel
(``fast=False``): same clock values, same resume order, same values
delivered, same tie-breaking at shared instants. This suite generates
random little concurrent programs — timeouts (including zero delays and
exact-tie sums), interrupts, resources, stores, ``AllOf``/``AnyOf``/
``CountOf`` — runs each on both kernels, and compares the full traces.

Programs follow the kernel's documented fast-path obligation: a
``Resource.request()`` is yielded immediately after it is created (the
inline-grant optimization assumes no side effects are interleaved
between the request and the wait; see ``sim.core``).

Delays are dyadic rationals so independent sums collide bit-exactly,
exercising the ``(time, priority, eid)`` tie-breaking discipline rather
than dodging it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt, Resource, Store

N_RESOURCES = 2
N_STORES = 2
MAX_WORKERS = 4

#: Dyadic delays: 0.25 + 0.25 == 0.5 exactly, so unrelated timelines
#: tie at shared instants and ordering falls to the eid discipline.
_DELAYS = st.sampled_from((0.0, 0.125, 0.25, 0.5, 1.0))
_DELAY_LISTS = st.lists(_DELAYS, min_size=1, max_size=3)

_INSTR = st.one_of(
    st.tuples(st.just("timeout"), _DELAYS),
    st.tuples(st.just("sleep"), _DELAYS),
    st.tuples(st.just("resource"), st.integers(0, N_RESOURCES - 1), _DELAYS),
    st.tuples(st.just("put"), st.integers(0, N_STORES - 1),
              st.integers(0, 7)),
    st.tuples(st.just("get"), st.integers(0, N_STORES - 1)),
    st.tuples(st.just("allof"), _DELAY_LISTS),
    st.tuples(st.just("anyof"), _DELAY_LISTS),
    st.tuples(st.just("countof"), _DELAY_LISTS, st.integers(1, 3)),
    st.tuples(st.just("interrupt"), st.integers(0, MAX_WORKERS - 1),
              _DELAYS),
)

_PROGRAM = st.lists(
    st.lists(_INSTR, min_size=1, max_size=6),
    min_size=1, max_size=MAX_WORKERS,
)


def _run_program(program, fast):
    """Execute ``program`` on a fresh kernel; return the trace."""
    env = Environment(fast=fast)
    resources = [Resource(env) for _ in range(N_RESOURCES)]
    stores = [Store(env) for _ in range(N_STORES)]
    trace = []
    procs = {}

    def worker(wid, instrs):
        for step, instr in enumerate(instrs):
            tag = instr[0]
            try:
                if tag == "timeout":
                    yield env.timeout(instr[1])
                elif tag == "sleep":
                    yield from env.sleep(instr[1])
                elif tag == "resource":
                    res = resources[instr[1]]
                    req = res.request()
                    yield req
                    trace.append((env.now, wid, step, "granted"))
                    yield env.timeout(instr[2])
                    res.release(req)
                elif tag == "put":
                    stores[instr[1]].put((wid, step, instr[2]))
                elif tag == "get":
                    value = yield stores[instr[1]].get()
                    trace.append((env.now, wid, step, "got", value))
                elif tag == "allof":
                    yield env.all_of([env.timeout(d) for d in instr[1]])
                elif tag == "anyof":
                    yield env.any_of([env.timeout(d) for d in instr[1]])
                elif tag == "countof":
                    events = [env.timeout(d) for d in instr[1]]
                    yield env.count_of(events, min(instr[2], len(events)))
                elif tag == "interrupt":
                    yield env.timeout(instr[2])
                    target = procs.get(instr[1])
                    if (target is not None and instr[1] != wid
                            and target.is_alive):
                        target.interrupt((wid, step))
                        trace.append((env.now, wid, step, "sent-interrupt"))
                trace.append((env.now, wid, step, "done", tag))
            except Interrupt as exc:
                trace.append((env.now, wid, step, "interrupted", exc.cause))
        return wid

    for wid, instrs in enumerate(program):
        procs[wid] = env.process(worker(wid, instrs))
    try:
        env.run()
        trace.append(("end", env.now))
    except BaseException as exc:  # surfaced crash: must match bit-for-bit
        trace.append(("crash", env.now, type(exc).__name__, str(exc)))
    return trace


@settings(max_examples=120, deadline=None, derandomize=True)
@given(_PROGRAM)
def test_fast_kernel_matches_reference(program):
    assert _run_program(program, fast=True) == _run_program(
        program, fast=False)


def test_contended_resource_with_ties_matches_reference():
    # A hand-written worst case: four workers with identical dyadic
    # timelines fighting over one resource, so every grant decision is
    # an exact-tie broken by insertion order.
    program = [
        [("timeout", 0.25), ("resource", 0, 0.25), ("put", 0, w),
         ("resource", 0, 0.0), ("get", 0)]
        for w in range(4)
    ]
    assert _run_program(program, fast=True) == _run_program(
        program, fast=False)


def test_interrupt_storm_matches_reference():
    program = [
        [("resource", 0, 1.0), ("timeout", 0.5)],
        [("timeout", 0.125), ("interrupt", 0, 0.125), ("timeout", 0.0)],
        [("interrupt", 1, 0.25), ("resource", 0, 0.125)],
    ]
    assert _run_program(program, fast=True) == _run_program(
        program, fast=False)
