"""The dynamic half of the concurrency suite (DESIGN.md §11): waits-for
deadlock detection in the lock table, the Eraser-style lockset checker,
and the determinism of both planes' reports — a race or deadlock found
once must render byte-identically on every same-seed replay."""

import pytest

from conftest import make_bullet
from repro.analysis.runtime import (
    LocksetChecker,
    RaceReport,
    activate,
    active_checker,
    deactivate,
)
from repro.core import FileLockTable
from repro.errors import DeadlockError
from repro.sim import Environment, run_process


@pytest.fixture
def checker():
    """An activated checker, deactivated again at teardown."""
    checker = activate(LocksetChecker())
    yield checker
    deactivate()


# ------------------------------------------------------------- deadlock

def _ab_ba_deadlock():
    """Run the classic AB-BA deadlock; returns the rendered cycle."""
    env = Environment()
    table = FileLockTable(env)
    messages = []

    def worker(first, second):
        g1 = table.acquire_write(first)
        try:
            yield g1
            yield env.timeout(1)
            g2 = table.acquire_write(second)
            try:
                yield g2
            finally:
                table.release(g2)
        except DeadlockError as exc:
            messages.append(str(exc))
            raise
        finally:
            table.release(g1)

    env.process(worker(1, 2))
    env.process(worker(2, 1))
    with pytest.raises(DeadlockError):
        env.run()
    return messages


def test_ab_ba_deadlock_aborts_with_the_cycle():
    messages = _ab_ba_deadlock()
    assert len(messages) == 1
    (message,) = messages
    assert "waits-for cycle among 2 process(es)" in message
    assert "waits for write on inode 1" in message
    assert "waits for write on inode 2" in message
    assert "worker" in message  # process names, not raw ids


def test_deadlock_report_is_deterministic_across_runs():
    assert _ab_ba_deadlock() == _ab_ba_deadlock()


def test_self_deadlock_reacquiring_held_key(env):
    """A writer re-acquiring its own key without releasing waits on
    itself — a cycle of one, caught at the second acquire."""
    table = FileLockTable(env)

    def worker():
        grant = table.acquire_write(5)
        try:
            yield grant
            second = table.acquire_write(5)
            yield second
        finally:
            table.release(grant)

    with pytest.raises(DeadlockError, match="1 process"):
        run_process(env, worker())
    assert table.held_keys() == []


def test_detection_leaves_the_table_consistent(env):
    """The error lands on the requester that *closes* the cycle; when it
    backs off (releases what it holds), the earlier waiter — queued
    without incident — is admitted and the lock plane keeps working."""
    table = FileLockTable(env)
    log = []

    def early():
        # Holds 1, queues for 2 before any cycle exists.
        g1 = table.acquire_write(1)
        try:
            yield g1
            yield env.timeout(1)
            g2 = table.acquire_write(2)
            try:
                yield g2
                log.append(("early got 2", env.now))
            finally:
                table.release(g2)
        finally:
            table.release(g1)

    def late():
        # Holds 2; its request for 1 closes the cycle and is refused.
        g2 = table.acquire_write(2)
        try:
            yield g2
            yield env.timeout(1)
            with pytest.raises(DeadlockError):
                table.acquire_write(1)
        finally:
            table.release(g2)

    env.process(early())
    env.process(late())
    env.run()
    assert log == [("early got 2", 1.0)]
    assert table.held_keys() == []
    assert table.waiters(1) == 0 and table.waiters(2) == 0


def test_acquire_outside_a_process_skips_detection(env):
    # No active process: nothing to hang, nothing to blame.
    table = FileLockTable(env)
    grant = table.acquire_write(3)
    assert grant.owner is None
    table.release(grant)
    assert table.held_keys() == []


# -------------------------------------------------------------- lockset

def _locked_vs_unlocked_race():
    """One process writes under the lock, another without it; returns
    the rendered RaceReport."""
    env = Environment()
    table = FileLockTable(env)
    checker = activate(LocksetChecker())
    reports = []

    def locked_writer():
        grant = table.acquire_write(7)
        try:
            yield grant
            checker.on_access(("Store._sizes", 7), True,
                              env.active_process, env.now)
        finally:
            table.release(grant)

    def unlocked_writer():
        yield env.timeout(1)
        try:
            checker.on_access(("Store._sizes", 7), True,
                              env.active_process, env.now)
        except RaceReport as exc:
            reports.append(str(exc))

    try:
        env.process(locked_writer())
        env.process(unlocked_writer())
        env.run()
    finally:
        deactivate()
    return reports


def test_lockset_violation_raises_race_report():
    reports = _locked_vs_unlocked_race()
    assert len(reports) == 1
    (report,) = reports
    assert "lockset violation on Store._sizes[7]" in report
    assert "holding no locks" in report
    assert "holding {bullet:7}" in report
    assert "unlocked_writer" in report and "locked_writer" in report
    assert "t=1.0" in report and "t=0.0" in report


def test_race_report_is_deterministic_across_runs():
    assert _locked_vs_unlocked_race() == _locked_vs_unlocked_race()


def test_consistently_locked_accesses_stay_silent(env, checker):
    table = FileLockTable(env)

    def writer(delay):
        yield env.timeout(delay)
        grant = table.acquire_write(7)
        try:
            yield grant
            checker.on_access(("Store._sizes", 7), True,
                              env.active_process, env.now)
        finally:
            table.release(grant)

    env.process(writer(0))
    env.process(writer(1))
    env.run()
    assert checker.accesses == 2


def test_exclusive_phase_is_never_reported(env, checker):
    # A single process may touch its own state lock-free forever.
    def loner():
        for _ in range(3):
            yield env.timeout(1)
            checker.on_access(("Store._sizes", 1), True,
                              env.active_process, env.now)

    run_process(env, loner())
    assert checker.accesses == 3


def test_reset_separates_incarnations(env, checker):
    """Unlocked access by a second process is fine after reset(): the
    destroyed object's history must not damn its reincarnation."""
    def first_life():
        yield env.timeout(1)
        checker.on_access(("Store._sizes", 2), True,
                          env.active_process, env.now)

    def second_life():
        yield env.timeout(2)
        checker.on_access(("Store._sizes", 2), True,
                          env.active_process, env.now)

    run_process(env, first_life())
    checker.reset(("Store._sizes", 2))
    run_process(env, second_life())  # would race without the reset


def test_release_drops_the_holding(env, checker):
    table = FileLockTable(env)

    def worker():
        grant = table.acquire_write(4)
        yield grant
        process = env.active_process
        assert checker.holdings(process) == {("bullet", 4)}
        table.release(grant)
        assert checker.holdings(process) == frozenset()

    run_process(env, worker())


# ------------------------------------------------------- integration

def test_server_lives_accesses_feed_the_checker(env, checker):
    """CREATE/TOUCH/AGE drive the instrumented ``_lives`` sites through
    the real lock plane with zero reports."""
    bullet = make_bullet(env, workers=4)
    cap = run_process(env, bullet.create(b"x" * 512))
    run_process(env, bullet.touch(cap))
    run_process(env, bullet.age_all())
    assert checker.accesses >= 3


def test_process_names_are_replay_stable():
    def snapshot():
        env = Environment()

        def ping():
            yield env.timeout(1)

        procs = [env.process(ping()) for _ in range(3)]
        env.run()
        return [p.name for p in procs]

    first, second = snapshot(), snapshot()
    assert first == second
    assert len(set(first)) == 3  # serials disambiguate equal qualnames
