"""Seed counterexample regressions for the model checker.

Each committed trace under ``tests/modelcheck_traces/`` is a minimized
counterexample the explorer found against a deliberately weakened scope
(or a fault injection). Replaying it must still demonstrate the same
invariant-family violation: if one of these stops failing, either the
invariant checker went blind or the rig semantics drifted — both worth
noticing immediately.

The final test is the opposite kind of regression: the exact schedule
with which the checker caught a *real* product bug (an Ethernet-medium
grant leaked by a worker crashed mid-transmission, deadlocking every
later sender) must now run to quiescence cleanly.
"""

import os

import pytest

from repro.modelcheck import (
    CheckRig,
    InvariantViolation,
    Scope,
    assert_trace_still_fails,
    load_trace,
    replay_trace,
)

TRACE_DIR = os.path.join(os.path.dirname(__file__), "modelcheck_traces")


def trace_path(name):
    return os.path.join(TRACE_DIR, name)


# ------------------------------------------------- committed counterexamples


def test_durability_trace_still_fails():
    """AllFilesOnline with a spec/implementation mismatch: the scope
    claims tolerance 2 but the server only writes P-FACTOR 1, so a
    crash-cooled cache plus an overlapping MODIFY lets a confirmed file
    exist on a single replica — losing that replica kills it."""
    violation = assert_trace_still_fails(
        trace_path("durability_p1_tolerance2.json"))
    assert violation.family == "durability"
    assert "no live replica" in violation.message


def test_locks_trace_still_fails():
    """A lock grant acquired and never released must be caught by the
    leaked-grant check at quiescence."""
    violation = assert_trace_still_fails(
        trace_path("locks_leaked_grant.json"))
    assert violation.family == "locks"
    assert "leaked" in violation.message


def test_linearizability_trace_still_fails():
    """A flipped byte in a cached rnode (disks intact) must be caught
    by readback against the oracle."""
    violation = assert_trace_still_fails(
        trace_path("linearizability_cache_corrupt.json"))
    assert violation.family == "linearizability"
    assert "readback" in violation.message


def test_traces_record_shrunk_minimal_schedules():
    """Every committed trace went through the shrinker and says so."""
    for name in sorted(os.listdir(TRACE_DIR)):
        data = load_trace(trace_path(name))
        assert data["format"] == "repro.modelcheck/1"
        assert data["shrunk_from"] is not None
        assert len(data["trace"]) <= data["shrunk_from"]
        # And the recorded violation is what replay reproduces.
        violation = replay_trace(data)
        assert violation is not None
        assert violation.family == data["violation"]["family"]


# ----------------------------------------- the bug the checker actually found


# The schedule (found by DFS over Scope(p_factor=2, replica_losses=1,
# crashes=1, overlap=True)) that deadlocked before the fix: the server
# crash at step 12 killed a worker holding the Ethernet medium grant for
# c1's in-flight reply, so c0's outstanding request could never be
# transmitted and its wait hung forever.
ETHERNET_LEAK_SCHEDULE = [
    "c0.go", "c0.wait", "c0.go", "c0.wait", "c1.go", "c1.wait",
    "c0.go", "c1.go", "lose:md0", "c1.wait", "c1.go", "crash", "c0.wait",
]


# The schedule (found by a seeded random walk over the full fault
# scope) that lost a confirmed file before the recovery-race fix: a
# CREATE issued while md0 was dead raced an online recovery of md0 —
# the streaming copy's stale snapshot clobbered the CREATE's forwarded
# inode-table write on the rebuilt disk, and the post-crash boot read
# the stale table from the new primary.
RECOVERY_RACE_SCHEDULE = [
    "lose:md0", "c0.go", "repair:md0", "crash", "restart",
]


def test_recovery_copy_does_not_clobber_concurrent_writes():
    """Regression for the online-recovery race: mirrored writes issued
    while a recovery copy is streaming must survive on the rebuilt
    replica (MirroredDiskSet.resync_note + the re-copy rounds)."""
    scope = Scope(p_factor=2, replica_losses=1, crashes=1, repairs=1,
                  overlap=True)
    rig = CheckRig(scope)
    try:
        for label in RECOVERY_RACE_SCHEDULE:
            assert label in rig.enabled(), f"{label} not enabled: stale schedule"
            try:
                rig.apply(label)
            except InvariantViolation as violation:
                pytest.fail(f"schedule violated {violation.family} again: "
                            f"{violation.message}")
        rig.finalize()
    finally:
        rig.teardown()


def test_crash_mid_transmission_does_not_leak_the_medium():
    """Regression for the Ethernet-medium grant leak: a server crash
    interrupting a worker mid-reply-transmission must release (or
    withdraw) the medium claim so other senders make progress. Replay
    the exact catching schedule and require a clean run to quiescence —
    each label must be enabled when its turn comes (no vacuous pass)."""
    scope = Scope(p_factor=2, replica_losses=1, crashes=1, overlap=True)
    rig = CheckRig(scope)
    try:
        for label in ETHERNET_LEAK_SCHEDULE:
            assert label in rig.enabled(), f"{label} not enabled: stale schedule"
            try:
                rig.apply(label)
            except InvariantViolation as violation:
                pytest.fail(f"schedule violated {violation.family} again: "
                            f"{violation.message}")
        rig.finalize()
    finally:
        rig.teardown()
