"""Tests for the benchmark harness: workload distributions, table
rendering, and a scaled-down smoke run of the figure experiments."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    FileSizeDistribution,
    MeasurementTable,
    TraceGenerator,
    bullet_figure2,
    comparison_lines,
    make_rig,
    nfs_figure3,
    throughput_vs_clients,
)
from repro.sim import SeededStream
from repro.units import KB, MB

from conftest import small_testbed


# -------------------------------------------------------------- workload


def test_size_distribution_matches_cited_statistics():
    """[1]: median ~1 KB, 99% under 64 KB."""
    dist = FileSizeDistribution()
    stream = SeededStream(5, "sizes")
    samples = sorted(dist.sample(stream) for _ in range(20000))
    median = samples[len(samples) // 2]
    p99 = samples[int(len(samples) * 0.99)]
    assert 0.6 * KB < median < 1.6 * KB
    assert p99 <= 80 * KB  # clamped tail keeps this near 64 KB
    assert all(1 <= s <= 1 * MB for s in samples)


def test_size_distribution_deterministic():
    dist = FileSizeDistribution()
    a = [dist.sample(SeededStream(7, "s")) for _ in range(10)]
    b = [dist.sample(SeededStream(7, "s")) for _ in range(10)]
    assert a == b


def test_trace_generator_validity():
    """Reads/deletes only touch live files; sizes are attached to
    creates; the trace replays deterministically."""
    gen = TraceGenerator(seed=3)
    trace = gen.generate(n_ops=500, prepopulate=10)
    live = set()
    for op in trace:
        if op.kind == "create":
            assert op.file_id not in live
            assert op.size >= 1
            live.add(op.file_id)
        elif op.kind == "read":
            assert op.file_id in live
        else:
            assert op.file_id in live
            live.remove(op.file_id)
    trace2 = TraceGenerator(seed=3).generate(n_ops=500, prepopulate=10)
    assert trace == trace2


def test_trace_generator_mix_fractions():
    gen = TraceGenerator(seed=9, read_fraction=0.8, delete_fraction=0.05)
    trace = gen.generate(n_ops=2000, prepopulate=50)
    reads = sum(1 for op in trace if op.kind == "read")
    assert 0.7 < reads / 2000 < 0.9


def test_trace_generator_rejects_bad_fractions():
    with pytest.raises(ValueError):
        TraceGenerator(seed=1, read_fraction=0.8, delete_fraction=0.3)


def test_trace_reads_are_popularity_skewed():
    gen = TraceGenerator(seed=11, read_fraction=0.9, delete_fraction=0.0)
    trace = gen.generate(n_ops=3000, prepopulate=100)
    counts = {}
    for op in trace:
        if op.kind == "read":
            counts[op.file_id] = counts.get(op.file_id, 0) + 1
    top = sorted(counts.values(), reverse=True)
    # Popularity is concentrated: the top decile of read files takes a
    # disproportionate share of all reads.
    total = sum(top)
    decile = max(len(top) // 10, 1)
    assert sum(top[:decile]) > 0.25 * total
    assert top[0] > 2 * top[len(top) // 2]


# ---------------------------------------------------------------- tables


def make_table():
    table = MeasurementTable(title="T", columns=["READ", "CREATE"])
    table.record(1024, "READ", 0.002)
    table.record(1024, "CREATE", 0.020)
    table.record(1024 * 1024, "READ", 1.5)
    table.record(1024 * 1024, "CREATE", 2.0)
    return table


def test_table_delay_and_bandwidth():
    table = make_table()
    assert table.delay(1024, "READ") == 0.002
    assert table.bandwidth(1024, "READ") == pytest.approx(500.0)  # 1KB/2ms


def test_table_rejects_unknown_column():
    table = make_table()
    with pytest.raises(ValueError):
        table.record(1, "WRITE", 0.1)


def test_table_rendering_shapes():
    table = make_table()
    delay = table.render_delay()
    assert "Delay (msec)" in delay
    assert "1 Kbytes" in delay and "1 Mbyte" in delay
    assert "2.0" in delay  # 0.002 s -> 2.0 ms
    bandwidth = table.render_bandwidth()
    assert "Bandwidth (Kbytes/sec)" in bandwidth
    assert "500.0" in bandwidth


def test_comparison_lines_claims():
    bullet = MeasurementTable(title="B", columns=["READ", "CREATE+DEL"])
    nfs = MeasurementTable(title="N", columns=["READ", "CREATE"])
    # Synthetic numbers shaped like the paper: 4-5x read speedups, and
    # the NFS 1 MB dip (8 s read for 1 MB is slower per byte than 0.4 s
    # for 64 KB).
    for size, b_read, n_read in ((64 * KB, 0.1, 0.4), (1 * MB, 1.5, 8.0)):
        bullet.record(size, "READ", b_read)
        bullet.record(size, "CREATE+DEL", b_read * 1.4)
        nfs.record(size, "READ", n_read)
        nfs.record(size, "CREATE", n_read * 2.5)
    text = comparison_lines(bullet, nfs)
    assert "C1 read speedup" in text
    assert "4.0x" in text
    assert "HOLDS" in text and "FAILS" not in text


@given(
    seconds=st.floats(min_value=1e-6, max_value=100.0),
    size=st.integers(min_value=1, max_value=1 << 24),
)
@settings(max_examples=50)
def test_table_bandwidth_consistent_property(seconds, size):
    table = MeasurementTable(title="T", columns=["X"])
    table.record(size, "X", seconds)
    assert table.bandwidth(size, "X") == pytest.approx(
        (size / 1024) / seconds)


# ----------------------------------------------------------- harness smoke


def test_small_rig_figures_smoke():
    """The full figure pipeline on the scaled-down testbed: sanity of
    structure, not calibration (the paper-scale run lives in
    benchmarks/)."""
    rig = make_rig(testbed=small_testbed(), background_load=False,
                   nfs_churn=False)
    sizes = [1, 1 * KB, 64 * KB]
    fig2 = bullet_figure2(rig, sizes=sizes, repeats=1)
    fig3 = nfs_figure3(rig, sizes=sizes, repeats=1)
    for size in sizes:
        assert fig2.delay(size, "READ") > 0
        assert fig3.delay(size, "READ") > fig2.delay(size, "READ")
    text = comparison_lines(fig2, fig3)
    assert "C1" in text


def test_throughput_helper_smoke():
    results = throughput_vs_clients([1, 2], file_size=1 * KB, duration=2.0,
                                    testbed=small_testbed())
    assert results[1] > 0
    assert results[2] >= results[1] * 0.9


def test_rig_determinism():
    """Identical seeds must reproduce identical simulated delays."""
    def once():
        rig = make_rig(testbed=small_testbed(), seed=77, with_nfs=False)
        table = bullet_figure2(rig, sizes=[1 * KB], repeats=2)
        return table.delay(1 * KB, "READ"), table.delay(1 * KB, "CREATE+DEL")

    assert once() == once()
